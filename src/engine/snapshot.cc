#include "engine/snapshot.h"

#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <utility>

#include "dynamic/stats_maintainer.h"
#include "engine/estimation_context.h"
#include "util/serde.h"

namespace cegraph::engine {

namespace {

using util::serde::Reader;
using util::serde::Writer;

util::StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::InternalError("read error on " + path);
  return std::move(buffer).str();
}

util::Status WriteFileBytes(const std::string& path,
                            const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::InternalError("cannot open " + path + " for write");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return util::InternalError("write error on " + path);
  return util::Status::OK();
}

void WriteFingerprint(Writer& writer, const graph::GraphFingerprint& fp) {
  writer.WriteU32(fp.num_vertices);
  writer.WriteU32(fp.num_labels);
  writer.WriteU32(fp.num_vertex_labels);
  writer.WriteU64(fp.num_edges);
  writer.WriteU64(fp.edge_hash);
}

util::StatusOr<graph::GraphFingerprint> ReadFingerprint(Reader& reader) {
  graph::GraphFingerprint fp;
  auto num_vertices = reader.ReadU32();
  if (!num_vertices.ok()) return num_vertices.status();
  auto num_labels = reader.ReadU32();
  if (!num_labels.ok()) return num_labels.status();
  auto num_vertex_labels = reader.ReadU32();
  if (!num_vertex_labels.ok()) return num_vertex_labels.status();
  auto num_edges = reader.ReadU64();
  if (!num_edges.ok()) return num_edges.status();
  auto edge_hash = reader.ReadU64();
  if (!edge_hash.ok()) return edge_hash.status();
  fp.num_vertices = *num_vertices;
  fp.num_labels = *num_labels;
  fp.num_vertex_labels = *num_vertex_labels;
  fp.num_edges = *num_edges;
  fp.edge_hash = *edge_hash;
  return fp;
}

/// The options block a context would stamp into a snapshot it saves.
SnapshotOptions OptionsOf(const ContextOptions& options) {
  SnapshotOptions out;
  out.markov_h = static_cast<uint32_t>(options.markov_h);
  out.summary_buckets = options.summary_buckets;
  out.stats_materialize_cap = options.stats_materialize_cap;
  out.cc_walks_per_key =
      static_cast<uint32_t>(options.cycle_closing.walks_per_key);
  out.cc_max_attempt_factor =
      static_cast<uint32_t>(options.cycle_closing.max_attempt_factor);
  out.cc_max_mid_hops =
      static_cast<uint32_t>(options.cycle_closing.max_mid_hops);
  out.cc_seed = options.cycle_closing.seed;
  return out;
}

void WriteOptions(Writer& writer, const SnapshotOptions& options) {
  writer.WriteU32(options.markov_h);
  writer.WriteU32(options.summary_buckets);
  writer.WriteU64(options.stats_materialize_cap);
  writer.WriteU32(options.cc_walks_per_key);
  writer.WriteU32(options.cc_max_attempt_factor);
  writer.WriteU32(options.cc_max_mid_hops);
  writer.WriteU64(options.cc_seed);
}

util::StatusOr<SnapshotOptions> ReadOptions(Reader& reader) {
  SnapshotOptions out;
  auto markov_h = reader.ReadU32();
  if (!markov_h.ok()) return markov_h.status();
  auto buckets = reader.ReadU32();
  if (!buckets.ok()) return buckets.status();
  auto cap = reader.ReadU64();
  if (!cap.ok()) return cap.status();
  auto walks = reader.ReadU32();
  if (!walks.ok()) return walks.status();
  auto attempts = reader.ReadU32();
  if (!attempts.ok()) return attempts.status();
  auto mid_hops = reader.ReadU32();
  if (!mid_hops.ok()) return mid_hops.status();
  auto seed = reader.ReadU64();
  if (!seed.ok()) return seed.status();
  out.markov_h = *markov_h;
  out.summary_buckets = *buckets;
  out.stats_materialize_cap = *cap;
  out.cc_walks_per_key = *walks;
  out.cc_max_attempt_factor = *attempts;
  out.cc_max_mid_hops = *mid_hops;
  out.cc_seed = *seed;
  return out;
}

/// Validates magic + version and reads the fixed header; on success the
/// reader is positioned at the section count.
util::StatusOr<SnapshotInfo> ReadHeader(Reader& reader) {
  auto magic = reader.ReadRaw(8);
  if (!magic.ok()) return magic.status();
  if (std::memcmp(magic->data(), kSnapshotMagic, 8) != 0) {
    return util::InvalidArgumentError("not a cegraph summary snapshot");
  }
  SnapshotInfo info;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version < 1 || *version > kSnapshotVersion) {
    return util::InvalidArgumentError(
        "unsupported snapshot version " + std::to_string(*version) +
        " (this build reads versions 1.." + std::to_string(kSnapshotVersion) +
        ")");
  }
  info.version = *version;
  auto fp = ReadFingerprint(reader);
  if (!fp.ok()) return fp.status();
  info.fingerprint = *fp;
  auto options = ReadOptions(reader);
  if (!options.ok()) return options.status();
  info.options = *options;
  return info;
}

std::string DescribeFingerprint(const graph::GraphFingerprint& fp) {
  std::ostringstream out;
  out << fp.num_vertices << "V/" << fp.num_labels << "L/" << fp.num_edges
      << "E/hash=" << std::hex << fp.edge_hash;
  return std::move(out).str();
}

}  // namespace

const char* SnapshotSectionName(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case SnapshotSection::kMarkov:
      return "markov";
    case SnapshotSection::kClosingRates:
      return "closing-rates";
    case SnapshotSection::kDegreeCatalog:
      return "degree-catalog";
    case SnapshotSection::kCharSets:
      return "char-sets";
    case SnapshotSection::kSummaryGraph:
      return "summary-graph";
    case SnapshotSection::kDispersion:
      return "dispersion";
    case SnapshotSection::kDynamicState:
      return "dynamic-state";
    case SnapshotSection::kDeltaLog:
      return "delta-log";
  }
  return "unknown";
}

util::StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  info->file_bytes = bytes->size();
  // Static snapshots describe the base graph itself; a kDynamicState
  // section overrides this below.
  info->current_fingerprint = info->fingerprint;

  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();

    SnapshotSectionInfo section;
    section.id = *id;
    section.name = SnapshotSectionName(*id);
    section.payload_bytes = *length;
    // Every known section's payload leads with its entry count, except
    // markov (u32 h first) and char-sets / summary-graph (a u32 shape
    // field first).
    Reader sub(*payload);
    switch (static_cast<SnapshotSection>(*id)) {
      case SnapshotSection::kMarkov: {
        auto h = sub.ReadU32();
        if (!h.ok()) return h.status();
        section.markov_h = *h;
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kCharSets:
      case SnapshotSection::kSummaryGraph: {
        auto shape = sub.ReadU32();
        if (!shape.ok()) return shape.status();
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kClosingRates:
      case SnapshotSection::kDegreeCatalog:
      case SnapshotSection::kDispersion: {
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kDynamicState: {
        auto delta_hash = sub.ReadU64();
        if (!delta_hash.ok()) return delta_hash.status();
        auto epoch = sub.ReadU64();
        if (!epoch.ok()) return epoch.status();
        auto current = ReadFingerprint(sub);
        if (!current.ok()) return current.status();
        info->delta_hash = *delta_hash;
        info->epoch = *epoch;
        info->current_fingerprint = *current;
        section.entries = *epoch;
        break;
      }
      case SnapshotSection::kDeltaLog: {
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      default:
        break;  // unknown section: size only
    }
    info->sections.push_back(std::move(section));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after last section");
  }
  return *info;
}

util::StatusOr<std::vector<dynamic::EdgeDelta>> ReadSnapshotDeltaLog(
    const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  std::vector<dynamic::EdgeDelta> log;
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();
    if (static_cast<SnapshotSection>(*id) != SnapshotSection::kDeltaLog) {
      continue;
    }
    Reader sub(*payload);
    auto count = sub.ReadU64();
    if (!count.ok()) return count.status();
    // Each op is 13 bytes; bound before allocating.
    if (*count > sub.remaining() / 13) {
      return util::InvalidArgumentError("implausible delta-log length");
    }
    log.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      auto op = sub.ReadU8();
      if (!op.ok()) return op.status();
      if (*op > 1) {
        return util::InvalidArgumentError("unknown delta op in snapshot");
      }
      auto src = sub.ReadU32();
      if (!src.ok()) return src.status();
      auto dst = sub.ReadU32();
      if (!dst.ok()) return dst.status();
      auto label = sub.ReadU32();
      if (!label.ok()) return label.status();
      log.push_back({{*src, *dst, *label},
                     static_cast<dynamic::DeltaOp>(*op)});
    }
  }
  return log;
}

util::Status EstimationContext::SaveSnapshot(const std::string& path) const {
  // Collect stable pointers to everything built so far. Lazy fills only
  // ever *set* these unique_ptrs, and each Export takes its own cache
  // lock, so serialization can proceed outside the context mutex
  // (concurrent fills land either before or after the export — both are
  // consistent snapshots). Mutations that *replace* the structures
  // (ApplyDeltas, a stale LoadSnapshot) would free the collected
  // pointees mid-export; they are single-writer operations that must not
  // run concurrently with SaveSnapshot — the serving layer guarantees
  // this by saving only from states the maintainer owns.
  std::vector<std::pair<int, const stats::MarkovTable*>> markovs;
  const stats::CycleClosingRates* rates = nullptr;
  const stats::StatsCatalog* catalog = nullptr;
  const stats::CharacteristicSets* char_sets = nullptr;
  const stats::SummaryGraph* summary = nullptr;
  const stats::DispersionCatalog* dispersion = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [h, table] : markov_) markovs.emplace_back(h, table.get());
    rates = rates_.get();
    catalog = catalog_.get();
    char_sets = char_sets_.get();
    summary = summary_.get();
    dispersion = dispersion_.get();
  }

  std::vector<std::pair<SnapshotSection, std::string>> sections;
  for (const auto& [h, table] : markovs) {
    Writer payload;
    payload.WriteU32(static_cast<uint32_t>(h));
    table->ExportEntries(payload);
    sections.emplace_back(SnapshotSection::kMarkov, payload.TakeBuffer());
  }
  if (rates != nullptr) {
    Writer payload;
    rates->ExportEntries(payload);
    sections.emplace_back(SnapshotSection::kClosingRates,
                          payload.TakeBuffer());
  }
  if (catalog != nullptr) {
    Writer payload;
    catalog->ExportEntries(payload);
    sections.emplace_back(SnapshotSection::kDegreeCatalog,
                          payload.TakeBuffer());
  }
  if (char_sets != nullptr) {
    Writer payload;
    char_sets->Save(payload);
    sections.emplace_back(SnapshotSection::kCharSets, payload.TakeBuffer());
  }
  if (summary != nullptr) {
    Writer payload;
    summary->Save(payload);
    sections.emplace_back(SnapshotSection::kSummaryGraph,
                          payload.TakeBuffer());
  }
  if (dispersion != nullptr) {
    Writer payload;
    dispersion->ExportEntries(payload);
    sections.emplace_back(SnapshotSection::kDispersion, payload.TakeBuffer());
  }
  if (epoch_ > 0) {
    // The stored statistics describe the post-delta graph while the header
    // carries the base fingerprint; the dynamic-state section records
    // which point of the delta log this is and what the described graph's
    // own fingerprint is, and the version bump keeps version-1 readers
    // (which would skip the unknown section and load the stats against
    // the pristine base) from accepting the file.
    Writer payload;
    payload.WriteU64(delta_hash_);
    payload.WriteU64(epoch_);
    WriteFingerprint(payload, g_->fingerprint());
    sections.emplace_back(SnapshotSection::kDynamicState,
                          payload.TakeBuffer());

    // The net replay log makes the artifact self-contained: a consumer
    // holding only the base graph replays it to reconstruct this state.
    // Once TrimReplayLog has discarded a prefix the surviving suffix could
    // no longer reconstruct anything from the base, so the section is
    // omitted entirely rather than written incomplete.
    if (log_trimmed_ == 0) {
      Writer log;
      log.WriteU64(replay_log_.size());
      for (const dynamic::EdgeDelta& d : replay_log_) {
        log.WriteU8(static_cast<uint8_t>(d.op));
        log.WriteU32(d.edge.src);
        log.WriteU32(d.edge.dst);
        log.WriteU32(d.edge.label);
      }
      sections.emplace_back(SnapshotSection::kDeltaLog, log.TakeBuffer());
    }
  }

  Writer writer;
  writer.WriteRaw(std::string_view(kSnapshotMagic, 8));
  writer.WriteU32(epoch_ > 0 ? kSnapshotVersion : kSnapshotVersionStatic);
  WriteFingerprint(writer, base_fingerprint_);
  WriteOptions(writer, OptionsOf(options_));
  writer.WriteU32(static_cast<uint32_t>(sections.size()));
  for (const auto& [id, payload] : sections) {
    writer.WriteU32(static_cast<uint32_t>(id));
    writer.WriteU64(payload.size());
    writer.WriteRaw(payload);
  }
  return WriteFileBytes(path, writer.buffer());
}

util::Status EstimationContext::LoadSnapshot(const std::string& path,
                                             SnapshotLoadReport* report)
    const {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  // Reject statistics computed under different construction knobs: they
  // would merge cleanly but answer wrongly (e.g. over-cap verdicts from a
  // smaller materialize cap, rates from a different sampling setup, a
  // summary with a different bucket target). markov_h is exempt — Markov
  // sections carry their own h and their entries are exact counts.
  SnapshotOptions expected = OptionsOf(options_);
  SnapshotOptions actual = info->options;
  expected.markov_h = 0;
  actual.markov_h = 0;
  if (!(expected == actual)) {
    return util::FailedPreconditionError(
        "snapshot built under different context options (summary buckets " +
        std::to_string(info->options.summary_buckets) + "/" +
        std::to_string(options_.summary_buckets) + ", materialize cap " +
        std::to_string(info->options.stats_materialize_cap) + "/" +
        std::to_string(options_.stats_materialize_cap) +
        ", cycle-closing sampling " +
        std::to_string(info->options.cc_walks_per_key) + "x" +
        std::to_string(info->options.cc_max_attempt_factor) + "/" +
        std::to_string(info->options.cc_max_mid_hops) + " seed " +
        std::to_string(info->options.cc_seed) + ")");
  }

  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.reserve(*section_count);
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();
    sections.emplace_back(*id, std::move(*payload));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after last section");
  }

  // The snapshot's point in the delta log — (delta hash, epoch) plus the
  // fingerprint of the graph its statistics actually describe. Static
  // (version 1 / epoch 0) files describe the base graph itself.
  uint64_t snap_delta_hash = 0;
  uint64_t snap_epoch = 0;
  graph::GraphFingerprint snap_current = info->fingerprint;
  bool has_delta_log = false;
  for (const auto& [id, payload] : sections) {
    if (static_cast<SnapshotSection>(id) == SnapshotSection::kDeltaLog) {
      has_delta_log = true;
    }
    if (static_cast<SnapshotSection>(id) != SnapshotSection::kDynamicState) {
      continue;
    }
    Reader sub(payload);
    auto delta_hash = sub.ReadU64();
    if (!delta_hash.ok()) return delta_hash.status();
    auto epoch = sub.ReadU64();
    if (!epoch.ok()) return epoch.status();
    auto current = ReadFingerprint(sub);
    if (!current.ok()) return current.status();
    snap_delta_hash = *delta_hash;
    snap_epoch = *epoch;
    snap_current = *current;
  }

  // Freshness is judged by content first: statistics are a pure function
  // of (graph, options), so a snapshot whose described graph matches this
  // context's *current* graph merges fully, whatever lineage produced
  // either. Failing that, a snapshot taken at an earlier epoch of this
  // context's own delta log is stale-but-usable: keyed sections merge and
  // the missing deltas replay as targeted eviction + exact refresh.
  // Anything else is a mismatch that needs a rebuild — or, when the file
  // embeds its delta log, a reconstruction (replay the log onto the base
  // graph via ReadSnapshotDeltaLog + ApplyDeltas, then load fresh).
  // The snapshot's epoch must still be in the (possibly trimmed) history
  // window: MarkAt returns null both for epochs newer than this context
  // and for epochs whose replay suffix TrimReplayLog has discarded.
  const bool fresh = snap_current == g_->fingerprint();
  const EpochMark* mark = MarkAt(snap_epoch);
  if (!fresh && (!(info->fingerprint == base_fingerprint_) ||
                 mark == nullptr || mark->delta_hash != snap_delta_hash)) {
    return util::FailedPreconditionError(
        "snapshot fingerprint mismatch: statistics describe graph " +
        DescribeFingerprint(snap_current) + " (base " +
        DescribeFingerprint(info->fingerprint) + ", epoch " +
        std::to_string(snap_epoch) + "), context graph is " +
        DescribeFingerprint(g_->fingerprint()) + " (base " +
        DescribeFingerprint(base_fingerprint_) + ", epoch " +
        std::to_string(epoch_) + ") — " +
        (has_delta_log
             ? "replay the snapshot's embedded delta log onto its base "
               "graph (ReadSnapshotDeltaLog + ApplyDeltas), or rebuild"
             : "rebuild the snapshot for this graph state"));
  }
  const bool stale = !fresh;
  if (report != nullptr) {
    report->stale = stale;
    report->snapshot_epoch = snap_epoch;
    report->replayed_deltas =
        stale ? replay_log_.size() - (mark->log_size - log_trimmed_) : 0;
    report->evicted_entries = 0;
  }

  // Two-phase apply: the staging pass parses and validates every section
  // into throwaway structures, so a snapshot that is corrupted mid-file
  // never leaves partially imported entries in the live caches — a failed
  // load keeps the context exactly as it was. Parsing is deterministic, so
  // the live pass cannot fail where the staging pass succeeded.
  struct Staging {
    std::unique_ptr<stats::MarkovTable> markov;
    stats::CycleClosingRates rates;
    stats::StatsCatalog catalog;
    stats::DispersionCatalog dispersion;
    explicit Staging(const graph::Graph& g)
        : rates(g), catalog(g), dispersion(g) {}
  };
  Staging staging(*g_);
  for (const bool dry_run : {true, false}) {
    for (const auto& [id, payload] : sections) {
      // Stale loads skip the whole-graph summaries: they describe the
      // snapshot's epoch wholesale and have no per-key invalidation — the
      // live context rebuilds them lazily from the current graph instead.
      const auto section = static_cast<SnapshotSection>(id);
      if (stale && (section == SnapshotSection::kCharSets ||
                    section == SnapshotSection::kSummaryGraph)) {
        continue;
      }
      Reader sub(payload);
      switch (section) {
        case SnapshotSection::kMarkov: {
          auto h = sub.ReadU32();
          if (!h.ok()) return h.status();
          if (*h < 1 || *h > 16) {
            return util::InvalidArgumentError(
                "implausible Markov table size " + std::to_string(*h));
          }
          if (dry_run) {
            staging.markov = std::make_unique<stats::MarkovTable>(
                *g_, static_cast<int>(*h));
            CEGRAPH_RETURN_IF_ERROR(staging.markov->ImportEntries(sub));
          } else {
            auto table = TryMarkov(static_cast<int>(*h));
            if (!table.ok()) return table.status();
            CEGRAPH_RETURN_IF_ERROR((*table)->ImportEntries(sub));
          }
          break;
        }
        case SnapshotSection::kClosingRates:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.rates : cycle_closing_rates())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kDegreeCatalog:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.catalog : stats_catalog())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kCharSets: {
          auto loaded = stats::CharacteristicSets::Load(sub);
          if (!loaded.ok()) return loaded.status();
          if (loaded->num_graph_vertices() != g_->num_vertices()) {
            return util::InvalidArgumentError(
                "characteristic-set summary built over a different vertex "
                "count");
          }
          if (!dry_run) {
            std::lock_guard<std::mutex> lock(mutex_);
            // Adopt only if not yet built: estimators may already hold a
            // reference to an eagerly built summary, and the loaded one
            // is identical by construction determinism anyway.
            if (char_sets_ == nullptr) {
              char_sets_ = std::make_unique<stats::CharacteristicSets>(
                  std::move(*loaded));
            }
          }
          break;
        }
        case SnapshotSection::kSummaryGraph: {
          auto loaded = stats::SummaryGraph::Load(sub);
          if (!loaded.ok()) return loaded.status();
          // The SumRDF estimator indexes superedge tables by data-graph
          // label, so a summary whose label space does not match the
          // context graph would be undefined behavior, not just wrong.
          if (loaded->num_labels() != g_->num_labels()) {
            return util::InvalidArgumentError(
                "summary graph built over a different label count");
          }
          if (!dry_run) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (summary_ == nullptr) {
              summary_ = std::make_unique<stats::SummaryGraph>(
                  std::move(*loaded));
            }
          }
          break;
        }
        case SnapshotSection::kDispersion:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.dispersion : dispersion_catalog())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kDynamicState:
          continue;  // already parsed above
        default:
          continue;  // unknown section: written by a newer build, skip
      }
      if (!sub.AtEnd()) {
        return util::InvalidArgumentError(
            std::string("section ") + SnapshotSectionName(id) +
            " has trailing bytes (corrupted snapshot)");
      }
    }
  }

  if (stale) {
    // Replay the delta-log suffix the snapshot has not seen: the merged
    // entries were computed at the snapshot's epoch, so every entry whose
    // labels the missing deltas touched is evicted (and the cheap exact
    // entries refreshed from the current graph). Entries the live context
    // had already computed for the current epoch can only be over-evicted
    // by this — they lazily recompute to the same values.
    const std::vector<bool> changed = dynamic::ChangedLabelBitmap(
        g_->num_labels(),
        std::span<const dynamic::EdgeDelta>(replay_log_)
            .subspan(mark->log_size - log_trimmed_));
    size_t evicted = 0;
    std::vector<const stats::MarkovTable*> tables;
    const stats::CycleClosingRates* rates = nullptr;
    const stats::StatsCatalog* catalog = nullptr;
    const stats::DispersionCatalog* dispersion = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [h, table] : markov_) tables.push_back(table.get());
      rates = rates_.get();
      catalog = catalog_.get();
      dispersion = dispersion_.get();
    }
    for (const stats::MarkovTable* table : tables) {
      evicted += dynamic::StatsMaintainer::ScrubMarkov(*table, changed);
    }
    if (rates != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubClosingRates(*rates, changed);
    }
    if (catalog != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubCatalog(*catalog, changed);
    }
    if (dispersion != nullptr) {
      evicted +=
          dynamic::StatsMaintainer::ScrubDispersion(*dispersion, changed);
    }
    if (report != nullptr) report->evicted_entries = evicted;
  }
  return util::Status::OK();
}

}  // namespace cegraph::engine
