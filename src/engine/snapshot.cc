#include "engine/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <utility>

#include "dynamic/stats_maintainer.h"
#include "engine/estimation_context.h"
#include "util/arena.h"
#include "util/serde.h"
#include "util/shard.h"

namespace cegraph::engine {

namespace {

using util::serde::Reader;
using util::serde::Writer;

std::string EncodeDeltaLogPayload(
    const std::vector<dynamic::EdgeDelta>& replay_log);

util::StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::InternalError("read error on " + path);
  return std::move(buffer).str();
}

util::Status WriteFileBytes(const std::string& path,
                            const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::InternalError("cannot open " + path + " for write");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return util::InternalError("write error on " + path);
  return util::Status::OK();
}

void WriteFingerprint(Writer& writer, const graph::GraphFingerprint& fp) {
  writer.WriteU32(fp.num_vertices);
  writer.WriteU32(fp.num_labels);
  writer.WriteU32(fp.num_vertex_labels);
  writer.WriteU64(fp.num_edges);
  writer.WriteU64(fp.edge_hash);
}

util::StatusOr<graph::GraphFingerprint> ReadFingerprint(Reader& reader) {
  graph::GraphFingerprint fp;
  auto num_vertices = reader.ReadU32();
  if (!num_vertices.ok()) return num_vertices.status();
  auto num_labels = reader.ReadU32();
  if (!num_labels.ok()) return num_labels.status();
  auto num_vertex_labels = reader.ReadU32();
  if (!num_vertex_labels.ok()) return num_vertex_labels.status();
  auto num_edges = reader.ReadU64();
  if (!num_edges.ok()) return num_edges.status();
  auto edge_hash = reader.ReadU64();
  if (!edge_hash.ok()) return edge_hash.status();
  fp.num_vertices = *num_vertices;
  fp.num_labels = *num_labels;
  fp.num_vertex_labels = *num_vertex_labels;
  fp.num_edges = *num_edges;
  fp.edge_hash = *edge_hash;
  return fp;
}

/// The options block a context would stamp into a snapshot it saves.
SnapshotOptions OptionsOf(const ContextOptions& options) {
  SnapshotOptions out;
  out.markov_h = static_cast<uint32_t>(options.markov_h);
  out.summary_buckets = options.summary_buckets;
  out.stats_materialize_cap = options.stats_materialize_cap;
  out.cc_walks_per_key =
      static_cast<uint32_t>(options.cycle_closing.walks_per_key);
  out.cc_max_attempt_factor =
      static_cast<uint32_t>(options.cycle_closing.max_attempt_factor);
  out.cc_max_mid_hops =
      static_cast<uint32_t>(options.cycle_closing.max_mid_hops);
  out.cc_seed = options.cycle_closing.seed;
  return out;
}

void WriteOptions(Writer& writer, const SnapshotOptions& options) {
  writer.WriteU32(options.markov_h);
  writer.WriteU32(options.summary_buckets);
  writer.WriteU64(options.stats_materialize_cap);
  writer.WriteU32(options.cc_walks_per_key);
  writer.WriteU32(options.cc_max_attempt_factor);
  writer.WriteU32(options.cc_max_mid_hops);
  writer.WriteU64(options.cc_seed);
}

util::StatusOr<SnapshotOptions> ReadOptions(Reader& reader) {
  SnapshotOptions out;
  auto markov_h = reader.ReadU32();
  if (!markov_h.ok()) return markov_h.status();
  auto buckets = reader.ReadU32();
  if (!buckets.ok()) return buckets.status();
  auto cap = reader.ReadU64();
  if (!cap.ok()) return cap.status();
  auto walks = reader.ReadU32();
  if (!walks.ok()) return walks.status();
  auto attempts = reader.ReadU32();
  if (!attempts.ok()) return attempts.status();
  auto mid_hops = reader.ReadU32();
  if (!mid_hops.ok()) return mid_hops.status();
  auto seed = reader.ReadU64();
  if (!seed.ok()) return seed.status();
  out.markov_h = *markov_h;
  out.summary_buckets = *buckets;
  out.stats_materialize_cap = *cap;
  out.cc_walks_per_key = *walks;
  out.cc_max_attempt_factor = *attempts;
  out.cc_max_mid_hops = *mid_hops;
  out.cc_seed = *seed;
  return out;
}

/// Validates magic + version and reads the fixed header; on success the
/// reader is positioned at the section count.
util::StatusOr<SnapshotInfo> ReadHeader(Reader& reader) {
  auto magic = reader.ReadRaw(8);
  if (!magic.ok()) return magic.status();
  if (std::memcmp(magic->data(), kSnapshotMagic, 8) != 0) {
    return util::InvalidArgumentError("not a cegraph summary snapshot");
  }
  SnapshotInfo info;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version < 1 || *version > kSnapshotVersion) {
    return util::InvalidArgumentError(
        "unsupported snapshot version " + std::to_string(*version) +
        " (this build reads versions 1.." + std::to_string(kSnapshotVersion) +
        ")");
  }
  info.version = *version;
  auto fp = ReadFingerprint(reader);
  if (!fp.ok()) return fp.status();
  info.fingerprint = *fp;
  auto options = ReadOptions(reader);
  if (!options.ok()) return options.status();
  info.options = *options;
  return info;
}

std::string DescribeFingerprint(const graph::GraphFingerprint& fp) {
  std::ostringstream out;
  out << fp.num_vertices << "V/" << fp.num_labels << "L/" << fp.num_edges
      << "E/hash=" << std::hex << fp.edge_hash;
  return std::move(out).str();
}

/// Stable pointers to every statistics structure a context has built so
/// far, collected under the context mutex by the Save paths (lazy fills
/// only ever *set* the unique_ptrs; see the SaveSnapshot comment).
struct StatsRefs {
  std::vector<std::pair<int, const stats::MarkovTable*>> markovs;
  const stats::CycleClosingRates* rates = nullptr;
  const stats::StatsCatalog* catalog = nullptr;
  const stats::CharacteristicSets* char_sets = nullptr;
  const stats::SummaryGraph* summary = nullptr;
  const stats::DispersionCatalog* dispersion = nullptr;
  std::shared_ptr<const learn::FeedbackStore> feedback;
};

using SectionList = std::vector<std::pair<SnapshotSection, std::string>>;

/// The keyed-cache sections, optionally filtered to one key-hash shard
/// (num_shards == 0 writes everything — the monolithic layout).
SectionList BuildKeyedSections(const StatsRefs& s, uint32_t shard,
                               uint32_t num_shards) {
  SectionList sections;
  for (const auto& [h, table] : s.markovs) {
    Writer payload;
    payload.WriteU32(static_cast<uint32_t>(h));
    table->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kMarkov, payload.TakeBuffer());
  }
  if (s.rates != nullptr) {
    Writer payload;
    s.rates->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kClosingRates,
                          payload.TakeBuffer());
  }
  if (s.catalog != nullptr) {
    Writer payload;
    s.catalog->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kDegreeCatalog,
                          payload.TakeBuffer());
  }
  if (s.dispersion != nullptr) {
    Writer payload;
    s.dispersion->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kDispersion, payload.TakeBuffer());
  }
  return sections;
}

/// The whole-graph summary sections. Never sharded: their internal
/// structure (superedge tables between SumRDF buckets, the CS group table)
/// is not key-separable, so they travel in the manifest's common file.
SectionList BuildSummarySections(const StatsRefs& s) {
  SectionList sections;
  if (s.char_sets != nullptr) {
    Writer payload;
    s.char_sets->Save(payload);
    sections.emplace_back(SnapshotSection::kCharSets, payload.TakeBuffer());
  }
  if (s.summary != nullptr) {
    Writer payload;
    s.summary->Save(payload);
    sections.emplace_back(SnapshotSection::kSummaryGraph,
                          payload.TakeBuffer());
  }
  // The learned-feedback store rides with the summaries: it is
  // whole-store state (not key-separable), so it travels in monolithic
  // files and the manifest's common file, never in shard files. Empty
  // stores write nothing — a snapshot saved before any truth arrived is
  // byte-identical to a pre-feedback snapshot.
  if (s.feedback != nullptr && s.feedback->class_count() > 0) {
    sections.emplace_back(SnapshotSection::kFeedback,
                          s.feedback->Serialize());
  }
  return sections;
}

/// The dynamic-state stamp (and optionally the embedded replay log) of a
/// post-delta context; empty at epoch 0. See the comments at the original
/// SaveSnapshot call sites: the stamp records which point of the delta log
/// the statistics describe, and the log makes the artifact self-contained
/// — but only while nothing has been trimmed (a partial log could not
/// reconstruct the state from the base graph, so it is omitted entirely).
SectionList BuildDynamicSections(
    uint64_t epoch, uint64_t delta_hash,
    const graph::GraphFingerprint& current_fp,
    const std::vector<dynamic::EdgeDelta>& replay_log, size_t log_trimmed,
    bool include_delta_log) {
  SectionList sections;
  if (epoch == 0) return sections;
  Writer payload;
  payload.WriteU64(delta_hash);
  payload.WriteU64(epoch);
  WriteFingerprint(payload, current_fp);
  sections.emplace_back(SnapshotSection::kDynamicState, payload.TakeBuffer());
  if (include_delta_log && log_trimmed == 0) {
    sections.emplace_back(SnapshotSection::kDeltaLog,
                          EncodeDeltaLogPayload(replay_log));
  }
  return sections;
}

/// One complete snapshot file image: header + section table.
std::string EncodeSnapshotFile(uint32_t version,
                               const graph::GraphFingerprint& base_fp,
                               const SnapshotOptions& options,
                               const SectionList& sections) {
  Writer writer;
  writer.WriteRaw(std::string_view(kSnapshotMagic, 8));
  writer.WriteU32(version);
  WriteFingerprint(writer, base_fp);
  WriteOptions(writer, options);
  writer.WriteU32(static_cast<uint32_t>(sections.size()));
  for (const auto& [id, payload] : sections) {
    writer.WriteU32(static_cast<uint32_t>(id));
    writer.WriteU64(payload.size());
    writer.WriteRaw(payload);
  }
  return writer.TakeBuffer();
}

/// Resolves a manifest-stored (relative) file name against the manifest's
/// own directory.
std::string ResolveManifestFile(const std::string& manifest_path,
                                const std::string& file) {
  const std::filesystem::path p(file);
  if (p.is_absolute()) return file;
  return (std::filesystem::path(manifest_path).parent_path() / p).string();
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The snapshot-vs-context options guard shared by every load path (see
/// the comment in LoadSnapshotBytes for why markov_h is exempt).
util::Status CheckSnapshotOptions(const SnapshotOptions& snap,
                                  const ContextOptions& ctx) {
  SnapshotOptions expected = OptionsOf(ctx);
  SnapshotOptions actual = snap;
  expected.markov_h = 0;
  actual.markov_h = 0;
  if (expected == actual) return util::Status::OK();
  return util::FailedPreconditionError(
      "snapshot built under different context options (summary buckets " +
      std::to_string(snap.summary_buckets) + "/" +
      std::to_string(ctx.summary_buckets) + ", materialize cap " +
      std::to_string(snap.stats_materialize_cap) + "/" +
      std::to_string(ctx.stats_materialize_cap) +
      ", cycle-closing sampling " + std::to_string(snap.cc_walks_per_key) +
      "x" + std::to_string(snap.cc_max_attempt_factor) + "/" +
      std::to_string(snap.cc_max_mid_hops) + " seed " +
      std::to_string(snap.cc_seed) + ")");
}

/// The "neither fresh nor stale-replayable" rejection shared by the v2 and
/// arena load paths.
util::Status FingerprintMismatchError(
    const graph::GraphFingerprint& snap_current,
    const graph::GraphFingerprint& snap_base, uint64_t snap_epoch,
    const graph::GraphFingerprint& ctx_graph,
    const graph::GraphFingerprint& ctx_base, uint64_t ctx_epoch,
    bool has_delta_log) {
  return util::FailedPreconditionError(
      "snapshot fingerprint mismatch: statistics describe graph " +
      DescribeFingerprint(snap_current) + " (base " +
      DescribeFingerprint(snap_base) + ", epoch " +
      std::to_string(snap_epoch) + "), context graph is " +
      DescribeFingerprint(ctx_graph) + " (base " +
      DescribeFingerprint(ctx_base) + ", epoch " +
      std::to_string(ctx_epoch) + ") — " +
      (has_delta_log
           ? "replay the snapshot's embedded delta log onto its base "
             "graph (ReadSnapshotDeltaLog + ApplyDeltas), or rebuild"
           : "rebuild the snapshot for this graph state"));
}

/// The kDeltaLog payload (shared verbatim by the v2 and arena containers).
std::string EncodeDeltaLogPayload(
    const std::vector<dynamic::EdgeDelta>& replay_log) {
  Writer log;
  log.WriteU64(replay_log.size());
  for (const dynamic::EdgeDelta& d : replay_log) {
    log.WriteU8(static_cast<uint8_t>(d.op));
    log.WriteU32(d.edge.src);
    log.WriteU32(d.edge.dst);
    log.WriteU32(d.edge.label);
  }
  return log.TakeBuffer();
}

util::StatusOr<std::vector<dynamic::EdgeDelta>> ParseDeltaLogPayload(
    std::string_view payload) {
  Reader sub(payload);
  auto count = sub.ReadU64();
  if (!count.ok()) return count.status();
  // Each op is 13 bytes; bound before allocating.
  if (*count > sub.remaining() / 13) {
    return util::InvalidArgumentError("implausible delta-log length");
  }
  std::vector<dynamic::EdgeDelta> log;
  log.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto op = sub.ReadU8();
    if (!op.ok()) return op.status();
    if (*op > 1) {
      return util::InvalidArgumentError("unknown delta op in snapshot");
    }
    auto src = sub.ReadU32();
    if (!src.ok()) return src.status();
    auto dst = sub.ReadU32();
    if (!dst.ok()) return dst.status();
    auto label = sub.ReadU32();
    if (!label.ok()) return label.status();
    log.push_back({{*src, *dst, *label}, static_cast<dynamic::DeltaOp>(*op)});
  }
  return log;
}

// ---- Arena (version 3) container ----

constexpr uint32_t SectionId(SnapshotSection s) {
  return static_cast<uint32_t>(s);
}

/// The folded header carried by every arena file (kArenaMeta payload).
struct ArenaMeta {
  uint32_t snapshot_version = 0;
  graph::GraphFingerprint fingerprint;  ///< base graph
  SnapshotOptions options;
  uint64_t delta_hash = 0;
  uint64_t epoch = 0;
  graph::GraphFingerprint current_fingerprint;
};

std::string EncodeArenaMeta(const graph::GraphFingerprint& base_fp,
                            const SnapshotOptions& options,
                            uint64_t delta_hash, uint64_t epoch,
                            const graph::GraphFingerprint& current_fp) {
  Writer w;
  w.WriteU32(kSnapshotVersionArena);
  WriteFingerprint(w, base_fp);
  WriteOptions(w, options);
  w.WriteU64(delta_hash);
  w.WriteU64(epoch);
  WriteFingerprint(w, current_fp);
  return w.TakeBuffer();
}

util::StatusOr<ArenaMeta> ParseArenaMeta(std::string_view payload) {
  Reader reader(payload);
  ArenaMeta meta;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kSnapshotVersionArena) {
    return util::InvalidArgumentError(
        "unsupported arena snapshot version " + std::to_string(*version) +
        " (this build reads version " +
        std::to_string(kSnapshotVersionArena) + ")");
  }
  meta.snapshot_version = *version;
  auto fp = ReadFingerprint(reader);
  if (!fp.ok()) return fp.status();
  meta.fingerprint = *fp;
  auto options = ReadOptions(reader);
  if (!options.ok()) return options.status();
  meta.options = *options;
  auto delta_hash = reader.ReadU64();
  if (!delta_hash.ok()) return delta_hash.status();
  meta.delta_hash = *delta_hash;
  auto epoch = reader.ReadU64();
  if (!epoch.ok()) return epoch.status();
  meta.epoch = *epoch;
  auto current = ReadFingerprint(reader);
  if (!current.ok()) return current.status();
  meta.current_fingerprint = *current;
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError(
        "arena-meta section has trailing bytes");
  }
  return meta;
}

/// One complete arena file image. `include_keyed`/`include_summaries`
/// select the section groups exactly like the v2 Build*Sections helpers
/// (shard files carry keyed indexes, the common file the summaries); the
/// meta section is always present, and the delta log travels only in
/// monolithic/common files of untrimmed dynamic contexts.
std::string EncodeArenaSnapshotFile(
    const StatsRefs& s, uint32_t shard, uint32_t num_shards,
    bool include_keyed, bool include_summaries,
    const graph::GraphFingerprint& base_fp, const SnapshotOptions& options,
    uint64_t delta_hash, uint64_t epoch,
    const graph::GraphFingerprint& current_fp,
    const std::vector<dynamic::EdgeDelta>& replay_log, size_t log_trimmed,
    bool include_delta_log) {
  util::ArenaBuilder arena;
  arena.AddSection(
      SectionId(SnapshotSection::kArenaMeta),
      EncodeArenaMeta(base_fp, options, delta_hash, epoch, current_fp));
  if (include_keyed) {
    for (const auto& [h, table] : s.markovs) {
      util::ArenaIndexBuilder index;
      table->ExportArenaEntries(index, shard, num_shards);
      Writer payload;
      payload.WriteU32(static_cast<uint32_t>(h));
      payload.WriteU32(0);  // pad: the index payload starts 8-aligned
      payload.WriteRaw(index.Finish());
      arena.AddSection(SectionId(SnapshotSection::kMarkov),
                       payload.TakeBuffer());
    }
    if (s.rates != nullptr) {
      util::ArenaIndexBuilder index;
      s.rates->ExportArenaEntries(index, shard, num_shards);
      arena.AddSection(SectionId(SnapshotSection::kClosingRates),
                       index.Finish());
    }
    if (s.catalog != nullptr) {
      util::ArenaIndexBuilder bases;
      s.catalog->ExportArenaBases(bases, shard, num_shards);
      arena.AddSection(SectionId(SnapshotSection::kDegreeCatalog),
                       bases.Finish());
      util::ArenaIndexBuilder joins;
      s.catalog->ExportArenaJoins(joins, shard, num_shards);
      arena.AddSection(SectionId(SnapshotSection::kDegreeJoins),
                       joins.Finish());
    }
    if (s.dispersion != nullptr) {
      util::ArenaIndexBuilder index;
      s.dispersion->ExportArenaEntries(index, shard, num_shards);
      arena.AddSection(SectionId(SnapshotSection::kDispersion),
                       index.Finish());
    }
  }
  if (include_summaries) {
    if (s.char_sets != nullptr) {
      arena.AddSection(SectionId(SnapshotSection::kCharSets),
                       s.char_sets->SaveArena());
    }
    if (s.summary != nullptr) {
      Writer payload;
      s.summary->Save(payload);
      arena.AddSection(SectionId(SnapshotSection::kSummaryGraph),
                       payload.TakeBuffer());
    }
    // Same placement rule as the v2 BuildSummarySections: the feedback
    // store is whole-store state, so it travels with the summaries
    // (monolithic + common files), and an empty store writes nothing.
    if (s.feedback != nullptr && s.feedback->class_count() > 0) {
      arena.AddSection(SectionId(SnapshotSection::kFeedback),
                       s.feedback->Serialize());
    }
  }
  if (epoch > 0 && include_delta_log && log_trimmed == 0) {
    arena.AddSection(SectionId(SnapshotSection::kDeltaLog),
                     EncodeDeltaLogPayload(replay_log));
  }
  return arena.Finish();
}

/// The arena branch of ReadSnapshotInfo: header from the meta section,
/// entry counts from each index/section header, offsets from the arena's
/// own section table.
util::StatusOr<SnapshotInfo> ReadArenaSnapshotInfo(
    const util::MappedArena& arena) {
  const util::MappedArena::Section* meta_section =
      arena.FindSection(SectionId(SnapshotSection::kArenaMeta));
  if (meta_section == nullptr) {
    return util::InvalidArgumentError(
        "arena snapshot has no arena-meta section");
  }
  auto meta = ParseArenaMeta(arena.SectionBytes(*meta_section));
  if (!meta.ok()) return meta.status();
  SnapshotInfo info;
  info.version = meta->snapshot_version;
  info.fingerprint = meta->fingerprint;
  info.options = meta->options;
  info.file_bytes = arena.size();
  info.delta_hash = meta->delta_hash;
  info.epoch = meta->epoch;
  info.current_fingerprint = meta->current_fingerprint;
  for (const util::MappedArena::Section& s : arena.sections()) {
    SnapshotSectionInfo section;
    section.id = s.id;
    section.name = SnapshotSectionName(s.id);
    section.payload_bytes = s.bytes;
    section.offset = s.offset;
    const std::string_view payload = arena.SectionBytes(s);
    switch (static_cast<SnapshotSection>(s.id)) {
      case SnapshotSection::kMarkov: {
        if (payload.size() < 8) {
          return util::InvalidArgumentError(
              "markov arena section truncated");
        }
        section.markov_h = util::LoadLittleU32(payload.data());
        auto index = util::MappedIndex::Attach(payload.substr(8));
        if (!index.ok()) return index.status();
        section.entries = index->num_entries();
        break;
      }
      case SnapshotSection::kClosingRates:
      case SnapshotSection::kDegreeCatalog:
      case SnapshotSection::kDegreeJoins:
      case SnapshotSection::kDispersion: {
        auto index = util::MappedIndex::Attach(payload);
        if (!index.ok()) return index.status();
        section.entries = index->num_entries();
        break;
      }
      case SnapshotSection::kCharSets: {
        if (payload.size() < 16) {
          return util::InvalidArgumentError(
              "char-sets arena section truncated");
        }
        section.entries = util::LoadLittleU64(payload.data() + 8);
        break;
      }
      case SnapshotSection::kSummaryGraph: {
        Reader sub(payload);
        auto shape = sub.ReadU32();
        if (!shape.ok()) return shape.status();
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kDeltaLog: {
        if (payload.size() < 8) {
          return util::InvalidArgumentError(
              "delta-log arena section truncated");
        }
        section.entries = util::LoadLittleU64(payload.data());
        break;
      }
      case SnapshotSection::kArenaMeta:
        section.entries = meta->epoch;
        break;
      case SnapshotSection::kFeedback:
        section.entries = learn::FeedbackStore::CountSerializedClasses(payload);
        break;
      default:
        break;  // unknown section: size only
    }
    info.sections.push_back(std::move(section));
  }
  return info;
}

}  // namespace

const char* SnapshotSectionName(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case SnapshotSection::kMarkov:
      return "markov";
    case SnapshotSection::kClosingRates:
      return "closing-rates";
    case SnapshotSection::kDegreeCatalog:
      return "degree-catalog";
    case SnapshotSection::kCharSets:
      return "char-sets";
    case SnapshotSection::kSummaryGraph:
      return "summary-graph";
    case SnapshotSection::kDispersion:
      return "dispersion";
    case SnapshotSection::kDynamicState:
      return "dynamic-state";
    case SnapshotSection::kDeltaLog:
      return "delta-log";
    case SnapshotSection::kArenaMeta:
      return "arena-meta";
    case SnapshotSection::kDegreeJoins:
      return "degree-joins";
    case SnapshotSection::kFeedback:
      return "feedback";
  }
  return "unknown";
}

util::StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  if (IsArenaSnapshot(path)) {
    auto arena = util::MappedArena::MapFile(path);
    if (!arena.ok()) return arena.status();
    return ReadArenaSnapshotInfo(**arena);
  }
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  info->file_bytes = bytes->size();
  // Static snapshots describe the base graph itself; a kDynamicState
  // section overrides this below.
  info->current_fingerprint = info->fingerprint;

  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();

    SnapshotSectionInfo section;
    section.id = *id;
    section.name = SnapshotSectionName(*id);
    section.payload_bytes = *length;
    // Every known section's payload leads with its entry count, except
    // markov (u32 h first) and char-sets / summary-graph (a u32 shape
    // field first).
    Reader sub(*payload);
    switch (static_cast<SnapshotSection>(*id)) {
      case SnapshotSection::kMarkov: {
        auto h = sub.ReadU32();
        if (!h.ok()) return h.status();
        section.markov_h = *h;
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kCharSets:
      case SnapshotSection::kSummaryGraph: {
        auto shape = sub.ReadU32();
        if (!shape.ok()) return shape.status();
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kClosingRates:
      case SnapshotSection::kDegreeCatalog:
      case SnapshotSection::kDispersion: {
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kDynamicState: {
        auto delta_hash = sub.ReadU64();
        if (!delta_hash.ok()) return delta_hash.status();
        auto epoch = sub.ReadU64();
        if (!epoch.ok()) return epoch.status();
        auto current = ReadFingerprint(sub);
        if (!current.ok()) return current.status();
        info->delta_hash = *delta_hash;
        info->epoch = *epoch;
        info->current_fingerprint = *current;
        section.entries = *epoch;
        break;
      }
      case SnapshotSection::kDeltaLog: {
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kFeedback:
        section.entries = learn::FeedbackStore::CountSerializedClasses(*payload);
        break;
      default:
        break;  // unknown section: size only
    }
    info->sections.push_back(std::move(section));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after last section");
  }
  return *info;
}

bool IsShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, 8);
  return in.gcount() == 8 &&
         std::memcmp(magic, kShardManifestMagic, 8) == 0;
}

bool IsArenaSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, 8);
  return in.gcount() == 8 &&
         std::memcmp(magic, util::kArenaMagic, 8) == 0;
}

util::StatusOr<ShardManifest> ReadShardManifest(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto magic = reader.ReadRaw(8);
  if (!magic.ok()) return magic.status();
  if (std::memcmp(magic->data(), kShardManifestMagic, 8) != 0) {
    return util::InvalidArgumentError("not a cegraph shard manifest");
  }
  ShardManifest manifest;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kShardManifestVersion) {
    return util::InvalidArgumentError(
        "unsupported shard-manifest version " + std::to_string(*version));
  }
  manifest.version = *version;
  auto fp = ReadFingerprint(reader);
  if (!fp.ok()) return fp.status();
  manifest.fingerprint = *fp;
  auto options = ReadOptions(reader);
  if (!options.ok()) return options.status();
  manifest.options = *options;
  auto snapshot_version = reader.ReadU32();
  if (!snapshot_version.ok()) return snapshot_version.status();
  if (*snapshot_version < 1 || *snapshot_version > kSnapshotVersionArena) {
    return util::InvalidArgumentError(
        "manifest names unsupported snapshot version " +
        std::to_string(*snapshot_version));
  }
  manifest.snapshot_version = *snapshot_version;
  auto num_shards = reader.ReadU32();
  if (!num_shards.ok()) return num_shards.status();
  if (*num_shards < 1 || *num_shards > kMaxSnapshotShards) {
    return util::InvalidArgumentError(
        "implausible manifest shard count " + std::to_string(*num_shards));
  }
  manifest.num_shards = *num_shards;
  auto common_file = reader.ReadString();
  if (!common_file.ok()) return common_file.status();
  manifest.common.file = std::move(*common_file);
  auto common_bytes = reader.ReadU64();
  if (!common_bytes.ok()) return common_bytes.status();
  manifest.common.bytes = *common_bytes;
  auto common_hash = reader.ReadU64();
  if (!common_hash.ok()) return common_hash.status();
  manifest.common.hash = *common_hash;
  auto entry_count = reader.ReadU32();
  if (!entry_count.ok()) return entry_count.status();

  // The shard table must be a partition: every id 0..num_shards-1 exactly
  // once. A duplicate is an *overlap* (two files both claiming a key
  // range); a gap is a missing shard; either silently skews estimates if
  // accepted, so both are hard errors.
  std::vector<bool> seen(manifest.num_shards, false);
  for (uint32_t i = 0; i < *entry_count; ++i) {
    ShardFileInfo entry;
    auto shard = reader.ReadU32();
    if (!shard.ok()) return shard.status();
    entry.shard = *shard;
    auto file = reader.ReadString();
    if (!file.ok()) return file.status();
    entry.file = std::move(*file);
    auto file_bytes = reader.ReadU64();
    if (!file_bytes.ok()) return file_bytes.status();
    entry.bytes = *file_bytes;
    auto hash = reader.ReadU64();
    if (!hash.ok()) return hash.status();
    entry.hash = *hash;
    if (entry.shard >= manifest.num_shards) {
      return util::InvalidArgumentError(
          "manifest shard id " + std::to_string(entry.shard) +
          " out of range (manifest declares " +
          std::to_string(manifest.num_shards) + " shards)");
    }
    if (seen[entry.shard]) {
      return util::InvalidArgumentError(
          "manifest lists shard " + std::to_string(entry.shard) +
          " more than once (overlapping key ranges)");
    }
    seen[entry.shard] = true;
    manifest.shards.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after manifest");
  }
  for (uint32_t k = 0; k < manifest.num_shards; ++k) {
    if (!seen[k]) {
      return util::InvalidArgumentError(
          "manifest is missing shard " + std::to_string(k) + " of " +
          std::to_string(manifest.num_shards));
    }
  }
  std::sort(manifest.shards.begin(), manifest.shards.end(),
            [](const ShardFileInfo& a, const ShardFileInfo& b) {
              return a.shard < b.shard;
            });
  return manifest;
}

namespace {

/// The delta-log extraction over one snapshot image (the body shared by
/// the file and manifest paths of ReadSnapshotDeltaLog).
util::StatusOr<std::vector<dynamic::EdgeDelta>> ParseSnapshotDeltaLog(
    std::string_view bytes);

}  // namespace

util::StatusOr<std::vector<dynamic::EdgeDelta>> ReadSnapshotDeltaLog(
    const std::string& path) {
  if (IsShardManifest(path)) {
    auto manifest = ReadShardManifest(path);
    if (!manifest.ok()) return manifest.status();
    // The common file (where the embedded log lives) gets the same
    // integrity treatment LoadSnapshotShards gives it: size + content
    // hash against the manifest before a byte is parsed. This also rules
    // out nesting/recursion — a manifest cannot record a valid hash of a
    // file containing that hash, and the magic check below rejects any
    // manifest-typed bytes outright.
    auto bytes =
        ReadFileBytes(ResolveManifestFile(path, manifest->common.file));
    if (!bytes.ok()) {
      return util::NotFoundError("manifest names missing shard file " +
                                 manifest->common.file + ": " +
                                 bytes.status().message());
    }
    if (bytes->size() != manifest->common.bytes ||
        util::StableHash64(*bytes) != manifest->common.hash) {
      return util::InvalidArgumentError(
          "shard file " + manifest->common.file +
          " does not match its manifest entry (corrupted or replaced)");
    }
    if (bytes->size() >= 8 &&
        std::memcmp(bytes->data(), kShardManifestMagic, 8) == 0) {
      return util::InvalidArgumentError(
          "manifest common entry " + manifest->common.file +
          " is itself a shard manifest (manifests cannot nest)");
    }
    return ParseSnapshotDeltaLog(*bytes);
  }
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParseSnapshotDeltaLog(*bytes);
}

namespace {

util::StatusOr<std::vector<dynamic::EdgeDelta>> ParseSnapshotDeltaLog(
    std::string_view bytes) {
  if (bytes.size() >= 8 &&
      std::memcmp(bytes.data(), util::kArenaMagic, 8) == 0) {
    auto arena = util::MappedArena::FromBytes(bytes);
    if (!arena.ok()) return arena.status();
    std::vector<dynamic::EdgeDelta> log;
    for (const util::MappedArena::Section* s :
         (*arena)->FindSections(SectionId(SnapshotSection::kDeltaLog))) {
      auto parsed = ParseDeltaLogPayload((*arena)->SectionBytes(*s));
      if (!parsed.ok()) return parsed.status();
      for (const dynamic::EdgeDelta& d : *parsed) log.push_back(d);
    }
    return log;
  }
  Reader reader(bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  std::vector<dynamic::EdgeDelta> log;
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();
    if (static_cast<SnapshotSection>(*id) != SnapshotSection::kDeltaLog) {
      continue;
    }
    auto parsed = ParseDeltaLogPayload(*payload);
    if (!parsed.ok()) return parsed.status();
    for (const dynamic::EdgeDelta& d : *parsed) log.push_back(d);
  }
  return log;
}

}  // namespace

util::Status EstimationContext::SaveSnapshot(const std::string& path,
                                             SnapshotFormat format) const {
  // Collect stable pointers to everything built so far. Lazy fills only
  // ever *set* these unique_ptrs, and each Export takes its own cache
  // lock, so serialization can proceed outside the context mutex
  // (concurrent fills land either before or after the export — both are
  // consistent snapshots). Mutations that *replace* the structures
  // (ApplyDeltas, a stale LoadSnapshot) would free the collected
  // pointees mid-export; they are single-writer operations that must not
  // run concurrently with SaveSnapshot — the serving layer guarantees
  // this by saving only from states the maintainer owns.
  StatsRefs refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MaterializePendingSummaryLocked();  // saved summaries must be concrete
    for (const auto& [h, table] : markov_) {
      refs.markovs.emplace_back(h, table.get());
    }
    refs.rates = rates_.get();
    refs.catalog = catalog_.get();
    refs.char_sets = char_sets_.get();
    refs.summary = summary_.get();
    refs.dispersion = dispersion_.get();
    refs.feedback = feedback_;
  }

  if (format == SnapshotFormat::kArena) {
    return WriteFileBytes(
        path, EncodeArenaSnapshotFile(
                  refs, 0, 0, /*include_keyed=*/true,
                  /*include_summaries=*/true, base_fingerprint_,
                  OptionsOf(options_), delta_hash_, epoch_,
                  g_->fingerprint(), replay_log_, log_trimmed_,
                  /*include_delta_log=*/true));
  }

  SectionList sections = BuildKeyedSections(refs, 0, 0);
  for (auto& section : BuildSummarySections(refs)) {
    sections.push_back(std::move(section));
  }
  for (auto& section :
       BuildDynamicSections(epoch_, delta_hash_, g_->fingerprint(),
                            replay_log_, log_trimmed_,
                            /*include_delta_log=*/true)) {
    sections.push_back(std::move(section));
  }
  return WriteFileBytes(
      path, EncodeSnapshotFile(
                epoch_ > 0 ? kSnapshotVersion : kSnapshotVersionStatic,
                base_fingerprint_, OptionsOf(options_), sections));
}

util::Status EstimationContext::SaveSnapshotShards(
    const std::string& manifest_path, uint32_t num_shards,
    SnapshotFormat format) const {
  if (num_shards < 1 || num_shards > kMaxSnapshotShards) {
    return util::InvalidArgumentError(
        "shard count must be in 1.." + std::to_string(kMaxSnapshotShards) +
        ", got " + std::to_string(num_shards));
  }
  StatsRefs refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MaterializePendingSummaryLocked();  // saved summaries must be concrete
    for (const auto& [h, table] : markov_) {
      refs.markovs.emplace_back(h, table.get());
    }
    refs.rates = rates_.get();
    refs.catalog = catalog_.get();
    refs.char_sets = char_sets_.get();
    refs.summary = summary_.get();
    refs.dispersion = dispersion_.get();
    refs.feedback = feedback_;
  }
  const bool arena = format == SnapshotFormat::kArena;
  const uint32_t version =
      arena ? kSnapshotVersionArena
            : (epoch_ > 0 ? kSnapshotVersion : kSnapshotVersionStatic);
  const SnapshotOptions options = OptionsOf(options_);
  const std::string base_name =
      std::filesystem::path(manifest_path).filename().string();

  // Every file carries the dynamic-state stamp (so each can be judged
  // fresh/stale on its own; arena files fold it into kArenaMeta); only the
  // common file embeds the replay log.
  const SectionList dynamic_stamp =
      arena ? SectionList{}
            : BuildDynamicSections(epoch_, delta_hash_, g_->fingerprint(),
                                   replay_log_, log_trimmed_,
                                   /*include_delta_log=*/false);

  // Common file: the whole-graph summaries + dynamic state + delta log.
  ShardFileInfo common;
  common.file = base_name + ".common";
  {
    std::string bytes;
    if (arena) {
      bytes = EncodeArenaSnapshotFile(
          refs, 0, 0, /*include_keyed=*/false, /*include_summaries=*/true,
          base_fingerprint_, options, delta_hash_, epoch_, g_->fingerprint(),
          replay_log_, log_trimmed_, /*include_delta_log=*/true);
    } else {
      SectionList sections = BuildSummarySections(refs);
      for (auto& section :
           BuildDynamicSections(epoch_, delta_hash_, g_->fingerprint(),
                                replay_log_, log_trimmed_,
                                /*include_delta_log=*/true)) {
        sections.push_back(std::move(section));
      }
      bytes = EncodeSnapshotFile(version, base_fingerprint_, options,
                                 sections);
    }
    common.bytes = bytes.size();
    common.hash = util::StableHash64(bytes);
    CEGRAPH_RETURN_IF_ERROR(WriteFileBytes(
        ResolveManifestFile(manifest_path, common.file), bytes));
  }

  // Shard k of S: the keyed sections filtered by key-hash range. Each
  // pass re-walks every cache and keeps the one-in-S entries — O(S x
  // entries) hashing overall, accepted for this offline tool path (the
  // caches hold thousands of entries and FNV over short keys is
  // nanoseconds; single-pass routing into S writers would complicate the
  // ExportEntries surface for no observable gain at current scales).
  std::vector<ShardFileInfo> shards;
  shards.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    ShardFileInfo shard;
    shard.shard = k;
    shard.file = base_name + ".shard" + std::to_string(k);
    std::string bytes;
    if (arena) {
      bytes = EncodeArenaSnapshotFile(
          refs, k, num_shards, /*include_keyed=*/true,
          /*include_summaries=*/false, base_fingerprint_, options,
          delta_hash_, epoch_, g_->fingerprint(), replay_log_, log_trimmed_,
          /*include_delta_log=*/false);
    } else {
      SectionList sections = BuildKeyedSections(refs, k, num_shards);
      for (const auto& section : dynamic_stamp) sections.push_back(section);
      bytes = EncodeSnapshotFile(version, base_fingerprint_, options,
                                 sections);
    }
    shard.bytes = bytes.size();
    shard.hash = util::StableHash64(bytes);
    CEGRAPH_RETURN_IF_ERROR(WriteFileBytes(
        ResolveManifestFile(manifest_path, shard.file), bytes));
    shards.push_back(std::move(shard));
  }

  Writer writer;
  writer.WriteRaw(std::string_view(kShardManifestMagic, 8));
  writer.WriteU32(kShardManifestVersion);
  WriteFingerprint(writer, base_fingerprint_);
  WriteOptions(writer, options);
  writer.WriteU32(version);
  writer.WriteU32(num_shards);
  writer.WriteString(common.file);
  writer.WriteU64(common.bytes);
  writer.WriteU64(common.hash);
  writer.WriteU32(static_cast<uint32_t>(shards.size()));
  for (const ShardFileInfo& shard : shards) {
    writer.WriteU32(shard.shard);
    writer.WriteString(shard.file);
    writer.WriteU64(shard.bytes);
    writer.WriteU64(shard.hash);
  }
  return WriteFileBytes(manifest_path, writer.buffer());
}

util::Status EstimationContext::LoadSnapshot(const std::string& path,
                                             SnapshotLoadReport* report)
    const {
  // A shard manifest is accepted anywhere a monolithic snapshot is: it
  // loads the union of all shards (fleet processes that want a subset call
  // LoadSnapshotShards with an explicit shard list).
  if (IsShardManifest(path)) return LoadSnapshotShards(path, {}, report);
  // Arena (version 3) files route through the zero-copy mmap path, so
  // existing call sites get mapped loads transparently.
  if (IsArenaSnapshot(path)) return LoadSnapshotMapped(path, report);
  const auto t_read = std::chrono::steady_clock::now();
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  const double read_millis = MillisSince(t_read);
  const auto t_parse = std::chrono::steady_clock::now();
  CEGRAPH_RETURN_IF_ERROR(LoadSnapshotBytes(*bytes, report));
  if (report != nullptr) {
    report->map_millis = read_millis;
    report->parse_millis = MillisSince(t_parse);
  }
  return util::Status::OK();
}

util::Status EstimationContext::LoadSnapshotMapped(const std::string& path,
                                                   SnapshotLoadReport* report)
    const {
  if (IsShardManifest(path)) return LoadSnapshotShards(path, {}, report);
  // v1/v2 files fall back to the parse path (LoadSnapshot will not route
  // them back here — the arena sniff fails for them).
  if (!IsArenaSnapshot(path)) return LoadSnapshot(path, report);
  const auto t_map = std::chrono::steady_clock::now();
  auto arena = util::MappedArena::MapFile(path);
  if (!arena.ok()) return arena.status();
  const double map_millis = MillisSince(t_map);
  const auto t_apply = std::chrono::steady_clock::now();
  CEGRAPH_RETURN_IF_ERROR(LoadSnapshotArena(*arena, report));
  if (report != nullptr) {
    report->map_millis = map_millis;
    report->parse_millis = MillisSince(t_apply);
  }
  return util::Status::OK();
}

util::Status EstimationContext::LoadSnapshotBytes(
    std::string_view bytes, SnapshotLoadReport* report, bool validate_only,
    bool scrub_stale) const {
  Reader reader(bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  // Reject statistics computed under different construction knobs: they
  // would merge cleanly but answer wrongly (e.g. over-cap verdicts from a
  // smaller materialize cap, rates from a different sampling setup, a
  // summary with a different bucket target). markov_h is exempt — Markov
  // sections carry their own h and their entries are exact counts.
  CEGRAPH_RETURN_IF_ERROR(CheckSnapshotOptions(info->options, options_));

  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.reserve(*section_count);
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();
    sections.emplace_back(*id, std::move(*payload));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after last section");
  }

  // The snapshot's point in the delta log — (delta hash, epoch) plus the
  // fingerprint of the graph its statistics actually describe. Static
  // (version 1 / epoch 0) files describe the base graph itself.
  uint64_t snap_delta_hash = 0;
  uint64_t snap_epoch = 0;
  graph::GraphFingerprint snap_current = info->fingerprint;
  bool has_delta_log = false;
  for (const auto& [id, payload] : sections) {
    if (static_cast<SnapshotSection>(id) == SnapshotSection::kDeltaLog) {
      has_delta_log = true;
    }
    if (static_cast<SnapshotSection>(id) != SnapshotSection::kDynamicState) {
      continue;
    }
    Reader sub(payload);
    auto delta_hash = sub.ReadU64();
    if (!delta_hash.ok()) return delta_hash.status();
    auto epoch = sub.ReadU64();
    if (!epoch.ok()) return epoch.status();
    auto current = ReadFingerprint(sub);
    if (!current.ok()) return current.status();
    snap_delta_hash = *delta_hash;
    snap_epoch = *epoch;
    snap_current = *current;
  }

  // Freshness is judged by content first: statistics are a pure function
  // of (graph, options), so a snapshot whose described graph matches this
  // context's *current* graph merges fully, whatever lineage produced
  // either. Failing that, a snapshot taken at an earlier epoch of this
  // context's own delta log is stale-but-usable: keyed sections merge and
  // the missing deltas replay as targeted eviction + exact refresh.
  // Anything else is a mismatch that needs a rebuild — or, when the file
  // embeds its delta log, a reconstruction (replay the log onto the base
  // graph via ReadSnapshotDeltaLog + ApplyDeltas, then load fresh).
  // The snapshot's epoch must still be in the (possibly trimmed) history
  // window: MarkAt returns null both for epochs newer than this context
  // and for epochs whose replay suffix TrimReplayLog has discarded.
  const bool fresh = snap_current == g_->fingerprint();
  const EpochMark* mark = MarkAt(snap_epoch);
  if (!fresh && (!(info->fingerprint == base_fingerprint_) ||
                 mark == nullptr || mark->delta_hash != snap_delta_hash)) {
    return FingerprintMismatchError(snap_current, info->fingerprint,
                                    snap_epoch, g_->fingerprint(),
                                    base_fingerprint_, epoch_, has_delta_log);
  }
  const bool stale = !fresh;
  if (report != nullptr) {
    report->stale = stale;
    report->snapshot_epoch = snap_epoch;
    report->replayed_deltas =
        stale ? replay_log_.size() - (mark->log_size - log_trimmed_) : 0;
    report->evicted_entries = 0;
    report->mapped = false;
    report->mapped_bytes = 0;
  }

  // Two-phase apply: the staging pass parses and validates every section
  // into throwaway structures, so a snapshot that is corrupted mid-file
  // never leaves partially imported entries in the live caches — a failed
  // load keeps the context exactly as it was. Parsing is deterministic, so
  // the live pass cannot fail where the staging pass succeeded.
  struct Staging {
    std::unique_ptr<stats::MarkovTable> markov;
    stats::CycleClosingRates rates;
    stats::StatsCatalog catalog;
    stats::DispersionCatalog dispersion;
    explicit Staging(const graph::Graph& g)
        : rates(g), catalog(g), dispersion(g) {}
  };
  Staging staging(*g_);
  for (const bool dry_run : {true, false}) {
    // Parsing is deterministic, so a validate-only pass that succeeds
    // guarantees the later apply pass cannot fail on the same bytes.
    if (!dry_run && validate_only) break;
    for (const auto& [id, payload] : sections) {
      // Stale loads skip the whole-graph summaries: they describe the
      // snapshot's epoch wholesale and have no per-key invalidation — the
      // live context rebuilds them lazily from the current graph instead.
      const auto section = static_cast<SnapshotSection>(id);
      if (stale && (section == SnapshotSection::kCharSets ||
                    section == SnapshotSection::kSummaryGraph)) {
        continue;
      }
      Reader sub(payload);
      switch (section) {
        case SnapshotSection::kMarkov: {
          auto h = sub.ReadU32();
          if (!h.ok()) return h.status();
          if (*h < 1 || *h > 16) {
            return util::InvalidArgumentError(
                "implausible Markov table size " + std::to_string(*h));
          }
          if (dry_run) {
            staging.markov = std::make_unique<stats::MarkovTable>(
                *g_, static_cast<int>(*h));
            CEGRAPH_RETURN_IF_ERROR(staging.markov->ImportEntries(sub));
          } else {
            auto table = TryMarkov(static_cast<int>(*h));
            if (!table.ok()) return table.status();
            CEGRAPH_RETURN_IF_ERROR((*table)->ImportEntries(sub));
          }
          break;
        }
        case SnapshotSection::kClosingRates:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.rates : cycle_closing_rates())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kDegreeCatalog:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.catalog : stats_catalog())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kCharSets: {
          auto loaded = stats::CharacteristicSets::Load(sub);
          if (!loaded.ok()) return loaded.status();
          if (loaded->num_graph_vertices() != g_->num_vertices()) {
            return util::InvalidArgumentError(
                "characteristic-set summary built over a different vertex "
                "count");
          }
          if (!dry_run) {
            std::lock_guard<std::mutex> lock(mutex_);
            // Adopt only if not yet built: estimators may already hold a
            // reference to an eagerly built summary, and the loaded one
            // is identical by construction determinism anyway.
            if (char_sets_ == nullptr) {
              char_sets_ = std::make_unique<stats::CharacteristicSets>(
                  std::move(*loaded));
            }
          }
          break;
        }
        case SnapshotSection::kSummaryGraph: {
          auto loaded = stats::SummaryGraph::Load(sub);
          if (!loaded.ok()) return loaded.status();
          // The SumRDF estimator indexes superedge tables by data-graph
          // label, so a summary whose label space does not match the
          // context graph would be undefined behavior, not just wrong.
          if (loaded->num_labels() != g_->num_labels()) {
            return util::InvalidArgumentError(
                "summary graph built over a different label count");
          }
          if (!dry_run) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (summary_ == nullptr) {
              // Supersedes any summary still pending from an earlier
              // mapped load.
              pending_summary_ = {};
              pending_summary_owner_.reset();
              summary_ = std::make_unique<stats::SummaryGraph>(
                  std::move(*loaded));
            }
          }
          break;
        }
        case SnapshotSection::kDispersion:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.dispersion : dispersion_catalog())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kDynamicState:
          continue;  // already parsed above
        case SnapshotSection::kFeedback: {
          // Deserialize carries its own drift guard: a payload stamped
          // for a different base graph is a clean discard, not an error.
          // The dry run parses into a throwaway store so a corrupt
          // payload cannot leave a partial import in the live one.
          if (dry_run) {
            learn::FeedbackStore probe;
            CEGRAPH_RETURN_IF_ERROR(
                probe.Deserialize(payload, feedback_stamp()));
          } else {
            CEGRAPH_RETURN_IF_ERROR(
                feedback_store_ptr()->Deserialize(payload, feedback_stamp()));
          }
          continue;  // Deserialize consumes the payload itself
        }
        default:
          continue;  // unknown section: written by a newer build, skip
      }
      if (!sub.AtEnd()) {
        return util::InvalidArgumentError(
            std::string("section ") + SnapshotSectionName(id) +
            " has trailing bytes (corrupted snapshot)");
      }
    }
  }

  if (stale && !validate_only && scrub_stale) {
    // Replay the delta-log suffix the snapshot has not seen: the merged
    // entries were computed at the snapshot's epoch, so every entry whose
    // labels the missing deltas touched is evicted (and the cheap exact
    // entries refreshed from the current graph). Entries the live context
    // had already computed for the current epoch can only be over-evicted
    // by this — they lazily recompute to the same values.
    const std::vector<bool> changed = dynamic::ChangedLabelBitmap(
        g_->num_labels(),
        std::span<const dynamic::EdgeDelta>(replay_log_)
            .subspan(mark->log_size - log_trimmed_));
    size_t evicted = 0;
    std::vector<const stats::MarkovTable*> tables;
    const stats::CycleClosingRates* rates = nullptr;
    const stats::StatsCatalog* catalog = nullptr;
    const stats::DispersionCatalog* dispersion = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [h, table] : markov_) tables.push_back(table.get());
      rates = rates_.get();
      catalog = catalog_.get();
      dispersion = dispersion_.get();
    }
    for (const stats::MarkovTable* table : tables) {
      evicted += dynamic::StatsMaintainer::ScrubMarkov(*table, changed);
    }
    if (rates != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubClosingRates(*rates, changed);
    }
    if (catalog != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubCatalog(*catalog, changed);
    }
    if (dispersion != nullptr) {
      evicted +=
          dynamic::StatsMaintainer::ScrubDispersion(*dispersion, changed);
    }
    if (report != nullptr) report->evicted_entries = evicted;
  }
  return util::Status::OK();
}

util::Status EstimationContext::LoadSnapshotArena(
    const std::shared_ptr<const util::MappedArena>& arena,
    SnapshotLoadReport* report, bool validate_only, bool scrub_stale) const {
  const util::MappedArena::Section* meta_section =
      arena->FindSection(SectionId(SnapshotSection::kArenaMeta));
  if (meta_section == nullptr) {
    return util::InvalidArgumentError(
        "arena snapshot has no arena-meta section");
  }
  auto meta = ParseArenaMeta(arena->SectionBytes(*meta_section));
  if (!meta.ok()) return meta.status();
  CEGRAPH_RETURN_IF_ERROR(CheckSnapshotOptions(meta->options, options_));

  // Same freshness judgment as the v2 path: content first (described graph
  // == current graph), else stale-but-replayable via the epoch history.
  const bool has_delta_log =
      arena->FindSection(SectionId(SnapshotSection::kDeltaLog)) != nullptr;
  const bool fresh = meta->current_fingerprint == g_->fingerprint();
  const EpochMark* mark = MarkAt(meta->epoch);
  if (!fresh && (!(meta->fingerprint == base_fingerprint_) ||
                 mark == nullptr || mark->delta_hash != meta->delta_hash)) {
    return FingerprintMismatchError(
        meta->current_fingerprint, meta->fingerprint, meta->epoch,
        g_->fingerprint(), base_fingerprint_, epoch_, has_delta_log);
  }
  const bool stale = !fresh;
  if (report != nullptr) {
    report->stale = stale;
    report->snapshot_epoch = meta->epoch;
    report->replayed_deltas =
        stale ? replay_log_.size() - (mark->log_size - log_trimmed_) : 0;
    report->evicted_entries = 0;
    report->mapped = false;
    report->mapped_bytes = arena->size();
  }

  // Stage everything into temporaries first: index headers attach (cheap
  // validation), the summaries parse/validate fully. Nothing below touches
  // the live caches until every section has passed, so a corrupt arena is
  // a clean error that leaves the context exactly as it was.
  struct AttachedSections {
    std::vector<std::pair<uint32_t, util::MappedIndex>> markov;
    std::optional<util::MappedIndex> rates;
    std::optional<util::MappedIndex> bases;
    std::optional<util::MappedIndex> joins;
    std::optional<util::MappedIndex> dispersion;
    std::optional<stats::CharacteristicSets> char_sets;
    std::string_view summary_payload;
    std::string_view feedback_payload;
  };
  AttachedSections att;
  for (const util::MappedArena::Section& s : arena->sections()) {
    const std::string_view payload = arena->SectionBytes(s);
    switch (static_cast<SnapshotSection>(s.id)) {
      case SnapshotSection::kMarkov: {
        if (payload.size() < 8) {
          return util::InvalidArgumentError(
              "markov arena section truncated");
        }
        const uint32_t h = util::LoadLittleU32(payload.data());
        if (h < 1 || h > 16) {
          return util::InvalidArgumentError(
              "implausible Markov table size " + std::to_string(h));
        }
        auto index = util::MappedIndex::Attach(payload.substr(8));
        if (!index.ok()) return index.status();
        att.markov.emplace_back(h, *index);
        break;
      }
      case SnapshotSection::kClosingRates: {
        auto index = util::MappedIndex::Attach(payload);
        if (!index.ok()) return index.status();
        att.rates = *index;
        break;
      }
      case SnapshotSection::kDegreeCatalog: {
        auto index = util::MappedIndex::Attach(payload);
        if (!index.ok()) return index.status();
        att.bases = *index;
        break;
      }
      case SnapshotSection::kDegreeJoins: {
        auto index = util::MappedIndex::Attach(payload);
        if (!index.ok()) return index.status();
        att.joins = *index;
        break;
      }
      case SnapshotSection::kDispersion: {
        auto index = util::MappedIndex::Attach(payload);
        if (!index.ok()) return index.status();
        att.dispersion = *index;
        break;
      }
      case SnapshotSection::kCharSets: {
        // Stale loads skip the whole-graph summaries, exactly like v2:
        // they describe the snapshot's epoch wholesale and rebuild lazily.
        if (stale) break;
        auto cs = stats::CharacteristicSets::AttachMapped(payload, arena);
        if (!cs.ok()) return cs.status();
        if (cs->num_graph_vertices() != g_->num_vertices()) {
          return util::InvalidArgumentError(
              "characteristic-set summary built over a different vertex "
              "count");
        }
        // Serving opens leave the per-group scan deferred; the validation
        // pass pays for it here so corruption is reported, not degraded.
        if (validate_only) CEGRAPH_RETURN_IF_ERROR(cs->ValidateNow());
        att.char_sets.emplace(std::move(*cs));
        break;
      }
      case SnapshotSection::kSummaryGraph: {
        if (stale) break;
        // Fresh applies defer the parse to first summary_graph() use, so
        // open time stays O(sections) however large the summary grew.
        // Only the validation pass (cegraph_stats verify, the shard
        // integrity walk) pays for a full decode here.
        if (!validate_only) {
          att.summary_payload = payload;
          break;
        }
        Reader sub(payload);
        auto loaded = stats::SummaryGraph::Load(sub);
        if (!loaded.ok()) return loaded.status();
        if (!sub.AtEnd()) {
          return util::InvalidArgumentError(
              "section summary-graph has trailing bytes (corrupted "
              "snapshot)");
        }
        if (loaded->num_labels() != g_->num_labels()) {
          return util::InvalidArgumentError(
              "summary graph built over a different label count");
        }
        break;
      }
      case SnapshotSection::kFeedback: {
        // Validate up front with a throwaway store (its Deserialize is
        // the stamp-aware drift guard, so a stale-graph payload passes
        // as a clean no-op); the live import happens after the whole
        // walk succeeds, matching the stage-then-apply contract.
        learn::FeedbackStore probe;
        CEGRAPH_RETURN_IF_ERROR(
            probe.Deserialize(payload, feedback_stamp()));
        att.feedback_payload = payload;
        break;
      }
      default:
        break;  // meta (parsed above), delta log, unknown sections
    }
  }

  if (stale) {
    // Stale loads go through the memo caches (the replay scrub only sees
    // memo entries, so indexes at an older epoch must never stay
    // attached). Dry-walk every index into throwaway structures first —
    // Visit validates each record and the decoders each value — so the
    // live walk below cannot fail halfway through a merge.
    struct Staging {
      std::unique_ptr<stats::MarkovTable> markov;
      stats::CycleClosingRates rates;
      stats::StatsCatalog catalog;
      stats::DispersionCatalog dispersion;
      explicit Staging(const graph::Graph& g)
          : rates(g), catalog(g), dispersion(g) {}
    };
    Staging staging(*g_);
    for (const auto& [h, index] : att.markov) {
      staging.markov =
          std::make_unique<stats::MarkovTable>(*g_, static_cast<int>(h));
      CEGRAPH_RETURN_IF_ERROR(staging.markov->MaterializeFromIndex(index));
    }
    if (att.rates.has_value()) {
      CEGRAPH_RETURN_IF_ERROR(staging.rates.MaterializeFromIndex(*att.rates));
    }
    if (att.bases.has_value()) {
      CEGRAPH_RETURN_IF_ERROR(staging.catalog.MaterializeFromBases(*att.bases));
    }
    if (att.joins.has_value()) {
      CEGRAPH_RETURN_IF_ERROR(staging.catalog.MaterializeFromJoins(*att.joins));
    }
    if (att.dispersion.has_value()) {
      CEGRAPH_RETURN_IF_ERROR(
          staging.dispersion.MaterializeFromIndex(*att.dispersion));
    }
  }
  if (validate_only) return util::Status::OK();

  // The feedback store imports on both the fresh and stale branches: its
  // stamp binds to the *base* fingerprint, which a stale-but-replayable
  // snapshot shares with this context by construction.
  if (!att.feedback_payload.empty()) {
    CEGRAPH_RETURN_IF_ERROR(feedback_store_ptr()->Deserialize(
        att.feedback_payload, feedback_stamp()));
  }

  if (fresh) {
    // Attach in place: lookups serve straight off the mapped bytes and
    // copy into the memo caches on first use. The shared arena handle
    // keeps the mapping alive for as long as any structure holds it.
    for (auto& [h, index] : att.markov) {
      auto table = TryMarkov(static_cast<int>(h));
      if (!table.ok()) return table.status();
      (*table)->AttachMappedIndex(std::move(index), arena);
    }
    if (att.rates.has_value()) {
      cycle_closing_rates().AttachMappedIndex(std::move(*att.rates), arena);
    }
    if (att.bases.has_value() || att.joins.has_value()) {
      const stats::StatsCatalog& catalog = stats_catalog();
      if (att.bases.has_value()) {
        catalog.AttachMappedBases(std::move(*att.bases), arena);
      }
      if (att.joins.has_value()) {
        catalog.AttachMappedJoins(std::move(*att.joins), arena);
      }
    }
    if (att.dispersion.has_value()) {
      dispersion_catalog().AttachMappedIndex(std::move(*att.dispersion),
                                             arena);
    }
    if (att.char_sets.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      // Adopt only if not yet built, same rule as the v2 path: estimators
      // may already hold a reference to an eagerly built summary, and the
      // mapped one is identical by construction determinism anyway.
      if (char_sets_ == nullptr) {
        char_sets_ = std::make_unique<stats::CharacteristicSets>(
            std::move(*att.char_sets));
      }
    }
    if (!att.summary_payload.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (summary_ == nullptr) {
        pending_summary_ = att.summary_payload;
        pending_summary_owner_ = arena;
      }
    }
    if (report != nullptr) report->mapped = true;
    return util::Status::OK();
  }

  // Stale: materialize every index into the live memo caches (the dry
  // walk above guarantees this cannot fail), then run the same
  // delta-replay scrub as the v2 path.
  for (const auto& [h, index] : att.markov) {
    auto table = TryMarkov(static_cast<int>(h));
    if (!table.ok()) return table.status();
    CEGRAPH_RETURN_IF_ERROR((*table)->MaterializeFromIndex(index));
  }
  if (att.rates.has_value()) {
    CEGRAPH_RETURN_IF_ERROR(
        cycle_closing_rates().MaterializeFromIndex(*att.rates));
  }
  if (att.bases.has_value() || att.joins.has_value()) {
    const stats::StatsCatalog& catalog = stats_catalog();
    if (att.bases.has_value()) {
      CEGRAPH_RETURN_IF_ERROR(catalog.MaterializeFromBases(*att.bases));
    }
    if (att.joins.has_value()) {
      CEGRAPH_RETURN_IF_ERROR(catalog.MaterializeFromJoins(*att.joins));
    }
  }
  if (att.dispersion.has_value()) {
    CEGRAPH_RETURN_IF_ERROR(
        dispersion_catalog().MaterializeFromIndex(*att.dispersion));
  }

  if (scrub_stale) {
    const std::vector<bool> changed = dynamic::ChangedLabelBitmap(
        g_->num_labels(),
        std::span<const dynamic::EdgeDelta>(replay_log_)
            .subspan(mark->log_size - log_trimmed_));
    size_t evicted = 0;
    std::vector<const stats::MarkovTable*> tables;
    const stats::CycleClosingRates* rates = nullptr;
    const stats::StatsCatalog* catalog = nullptr;
    const stats::DispersionCatalog* dispersion = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [h, table] : markov_) tables.push_back(table.get());
      rates = rates_.get();
      catalog = catalog_.get();
      dispersion = dispersion_.get();
    }
    for (const stats::MarkovTable* table : tables) {
      evicted += dynamic::StatsMaintainer::ScrubMarkov(*table, changed);
    }
    if (rates != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubClosingRates(*rates, changed);
    }
    if (catalog != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubCatalog(*catalog, changed);
    }
    if (dispersion != nullptr) {
      evicted +=
          dynamic::StatsMaintainer::ScrubDispersion(*dispersion, changed);
    }
    if (report != nullptr) report->evicted_entries = evicted;
  }
  return util::Status::OK();
}

util::Status EstimationContext::LoadSnapshotShards(
    const std::string& manifest_path, const std::vector<uint32_t>& shards,
    SnapshotLoadReport* report) const {
  auto manifest = ReadShardManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();

  // The requested shard set: explicit ids (validated) or all of them.
  std::vector<uint32_t> selected = shards;
  if (selected.empty()) {
    selected.reserve(manifest->num_shards);
    for (uint32_t k = 0; k < manifest->num_shards; ++k) {
      selected.push_back(k);
    }
  } else {
    std::vector<bool> seen(manifest->num_shards, false);
    for (const uint32_t k : selected) {
      if (k >= manifest->num_shards) {
        return util::InvalidArgumentError(
            "requested shard " + std::to_string(k) +
            " out of range (manifest has " +
            std::to_string(manifest->num_shards) + " shards)");
      }
      if (seen[k]) {
        return util::InvalidArgumentError("requested shard " +
                                          std::to_string(k) + " twice");
      }
      seen[k] = true;
    }
  }

  // Integrity pass before anything merges: every selected file must exist
  // and match the manifest's size/content hash, so a corrupt or swapped
  // shard is a clean error and a failed load leaves the context untouched
  // (the per-file loads below each keep their own two-phase guarantee).
  // The format of each file is sniffed from its magic, so one manifest
  // can mix arena and v2 files (e.g. shards rewritten one at a time
  // during a format migration). Arena files are mapped, with the hash
  // verified over the mapped view — no byte copy; v2 bytes are held and
  // parsed directly — re-reading the file for the load would both double
  // the I/O and open a window for the bytes on disk to change after
  // verification.
  struct ShardImage {
    std::string bytes;                               // v2 files
    std::shared_ptr<const util::MappedArena> arena;  // arena files
  };
  std::vector<const ShardFileInfo*> infos = {&manifest->common};
  for (const uint32_t k : selected) infos.push_back(&manifest->shards[k]);
  std::vector<ShardImage> images;
  images.reserve(infos.size());
  const auto t_open = std::chrono::steady_clock::now();
  for (const ShardFileInfo* info : infos) {
    const std::string path = ResolveManifestFile(manifest_path, info->file);
    ShardImage image;
    std::string_view view;
    if (IsArenaSnapshot(path)) {
      auto arena = util::MappedArena::MapFile(path);
      if (!arena.ok()) {
        return util::InvalidArgumentError("manifest shard file " +
                                          info->file + ": " +
                                          arena.status().message());
      }
      image.arena = std::move(*arena);
      view = image.arena->bytes();
    } else {
      auto bytes = ReadFileBytes(path);
      if (!bytes.ok()) {
        return util::NotFoundError("manifest names missing shard file " +
                                   info->file + ": " +
                                   bytes.status().message());
      }
      image.bytes = std::move(*bytes);
      view = image.bytes;
    }
    if (view.size() != info->bytes ||
        util::StableHash64(view) != info->hash) {
      return util::InvalidArgumentError(
          "shard file " + info->file +
          " does not match its manifest entry (corrupted or replaced; "
          "expected " + std::to_string(info->bytes) + " bytes, got " +
          std::to_string(view.size()) + ")");
    }
    // A shard entry must be a snapshot, never another manifest — this is
    // what keeps manifest resolution strictly one level deep.
    if (view.size() >= 8 &&
        std::memcmp(view.data(), kShardManifestMagic, 8) == 0) {
      return util::InvalidArgumentError(
          "manifest entry " + info->file +
          " is itself a shard manifest (manifests cannot nest)");
    }
    images.push_back(std::move(image));
  }

  // Validate every image before applying any: the manifest hash is
  // corruption detection, not authentication, so a malformed-but-
  // hash-consistent shard must fail here — with nothing merged — rather
  // than after earlier files already landed in the live caches. Parsing
  // is deterministic, so the apply pass below cannot fail where this
  // pass succeeded, which is what makes the multi-file load atomic.
  for (const ShardImage& image : images) {
    if (image.arena != nullptr) {
      CEGRAPH_RETURN_IF_ERROR(
          LoadSnapshotArena(image.arena, nullptr, /*validate_only=*/true));
    } else {
      CEGRAPH_RETURN_IF_ERROR(
          LoadSnapshotBytes(image.bytes, nullptr, /*validate_only=*/true));
    }
  }
  const double map_millis = MillisSince(t_open);

  // Apply: common first (it resolves freshness/staleness for the
  // artifact), then each selected shard. All files of one artifact carry
  // the same epoch stamp, so the stale-entry scrub — which walks every
  // live cache wholesale — runs once, on the last image, instead of once
  // per file.
  SnapshotLoadReport merged;
  const auto t_apply = std::chrono::steady_clock::now();
  for (size_t i = 0; i < images.size(); ++i) {
    SnapshotLoadReport file_report;
    const bool last = i + 1 == images.size();
    util::Status loaded =
        images[i].arena != nullptr
            ? LoadSnapshotArena(images[i].arena, &file_report,
                                /*validate_only=*/false, /*scrub_stale=*/last)
            : LoadSnapshotBytes(images[i].bytes, &file_report,
                                /*validate_only=*/false,
                                /*scrub_stale=*/last);
    if (!loaded.ok()) return loaded;
    if (i == 0) {
      merged = file_report;
    } else {
      merged.stale |= file_report.stale;
      merged.replayed_deltas =
          std::max(merged.replayed_deltas, file_report.replayed_deltas);
      merged.evicted_entries += file_report.evicted_entries;
      merged.mapped |= file_report.mapped;
      merged.mapped_bytes += file_report.mapped_bytes;
    }
  }
  merged.map_millis = map_millis;
  merged.parse_millis = MillisSince(t_apply);
  if (report != nullptr) *report = merged;
  return util::Status::OK();
}

}  // namespace cegraph::engine
