#include "engine/snapshot.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <utility>

#include "dynamic/stats_maintainer.h"
#include "engine/estimation_context.h"
#include "util/serde.h"
#include "util/shard.h"

namespace cegraph::engine {

namespace {

using util::serde::Reader;
using util::serde::Writer;

util::StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return util::InternalError("read error on " + path);
  return std::move(buffer).str();
}

util::Status WriteFileBytes(const std::string& path,
                            const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::InternalError("cannot open " + path + " for write");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return util::InternalError("write error on " + path);
  return util::Status::OK();
}

void WriteFingerprint(Writer& writer, const graph::GraphFingerprint& fp) {
  writer.WriteU32(fp.num_vertices);
  writer.WriteU32(fp.num_labels);
  writer.WriteU32(fp.num_vertex_labels);
  writer.WriteU64(fp.num_edges);
  writer.WriteU64(fp.edge_hash);
}

util::StatusOr<graph::GraphFingerprint> ReadFingerprint(Reader& reader) {
  graph::GraphFingerprint fp;
  auto num_vertices = reader.ReadU32();
  if (!num_vertices.ok()) return num_vertices.status();
  auto num_labels = reader.ReadU32();
  if (!num_labels.ok()) return num_labels.status();
  auto num_vertex_labels = reader.ReadU32();
  if (!num_vertex_labels.ok()) return num_vertex_labels.status();
  auto num_edges = reader.ReadU64();
  if (!num_edges.ok()) return num_edges.status();
  auto edge_hash = reader.ReadU64();
  if (!edge_hash.ok()) return edge_hash.status();
  fp.num_vertices = *num_vertices;
  fp.num_labels = *num_labels;
  fp.num_vertex_labels = *num_vertex_labels;
  fp.num_edges = *num_edges;
  fp.edge_hash = *edge_hash;
  return fp;
}

/// The options block a context would stamp into a snapshot it saves.
SnapshotOptions OptionsOf(const ContextOptions& options) {
  SnapshotOptions out;
  out.markov_h = static_cast<uint32_t>(options.markov_h);
  out.summary_buckets = options.summary_buckets;
  out.stats_materialize_cap = options.stats_materialize_cap;
  out.cc_walks_per_key =
      static_cast<uint32_t>(options.cycle_closing.walks_per_key);
  out.cc_max_attempt_factor =
      static_cast<uint32_t>(options.cycle_closing.max_attempt_factor);
  out.cc_max_mid_hops =
      static_cast<uint32_t>(options.cycle_closing.max_mid_hops);
  out.cc_seed = options.cycle_closing.seed;
  return out;
}

void WriteOptions(Writer& writer, const SnapshotOptions& options) {
  writer.WriteU32(options.markov_h);
  writer.WriteU32(options.summary_buckets);
  writer.WriteU64(options.stats_materialize_cap);
  writer.WriteU32(options.cc_walks_per_key);
  writer.WriteU32(options.cc_max_attempt_factor);
  writer.WriteU32(options.cc_max_mid_hops);
  writer.WriteU64(options.cc_seed);
}

util::StatusOr<SnapshotOptions> ReadOptions(Reader& reader) {
  SnapshotOptions out;
  auto markov_h = reader.ReadU32();
  if (!markov_h.ok()) return markov_h.status();
  auto buckets = reader.ReadU32();
  if (!buckets.ok()) return buckets.status();
  auto cap = reader.ReadU64();
  if (!cap.ok()) return cap.status();
  auto walks = reader.ReadU32();
  if (!walks.ok()) return walks.status();
  auto attempts = reader.ReadU32();
  if (!attempts.ok()) return attempts.status();
  auto mid_hops = reader.ReadU32();
  if (!mid_hops.ok()) return mid_hops.status();
  auto seed = reader.ReadU64();
  if (!seed.ok()) return seed.status();
  out.markov_h = *markov_h;
  out.summary_buckets = *buckets;
  out.stats_materialize_cap = *cap;
  out.cc_walks_per_key = *walks;
  out.cc_max_attempt_factor = *attempts;
  out.cc_max_mid_hops = *mid_hops;
  out.cc_seed = *seed;
  return out;
}

/// Validates magic + version and reads the fixed header; on success the
/// reader is positioned at the section count.
util::StatusOr<SnapshotInfo> ReadHeader(Reader& reader) {
  auto magic = reader.ReadRaw(8);
  if (!magic.ok()) return magic.status();
  if (std::memcmp(magic->data(), kSnapshotMagic, 8) != 0) {
    return util::InvalidArgumentError("not a cegraph summary snapshot");
  }
  SnapshotInfo info;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version < 1 || *version > kSnapshotVersion) {
    return util::InvalidArgumentError(
        "unsupported snapshot version " + std::to_string(*version) +
        " (this build reads versions 1.." + std::to_string(kSnapshotVersion) +
        ")");
  }
  info.version = *version;
  auto fp = ReadFingerprint(reader);
  if (!fp.ok()) return fp.status();
  info.fingerprint = *fp;
  auto options = ReadOptions(reader);
  if (!options.ok()) return options.status();
  info.options = *options;
  return info;
}

std::string DescribeFingerprint(const graph::GraphFingerprint& fp) {
  std::ostringstream out;
  out << fp.num_vertices << "V/" << fp.num_labels << "L/" << fp.num_edges
      << "E/hash=" << std::hex << fp.edge_hash;
  return std::move(out).str();
}

/// Stable pointers to every statistics structure a context has built so
/// far, collected under the context mutex by the Save paths (lazy fills
/// only ever *set* the unique_ptrs; see the SaveSnapshot comment).
struct StatsRefs {
  std::vector<std::pair<int, const stats::MarkovTable*>> markovs;
  const stats::CycleClosingRates* rates = nullptr;
  const stats::StatsCatalog* catalog = nullptr;
  const stats::CharacteristicSets* char_sets = nullptr;
  const stats::SummaryGraph* summary = nullptr;
  const stats::DispersionCatalog* dispersion = nullptr;
};

using SectionList = std::vector<std::pair<SnapshotSection, std::string>>;

/// The keyed-cache sections, optionally filtered to one key-hash shard
/// (num_shards == 0 writes everything — the monolithic layout).
SectionList BuildKeyedSections(const StatsRefs& s, uint32_t shard,
                               uint32_t num_shards) {
  SectionList sections;
  for (const auto& [h, table] : s.markovs) {
    Writer payload;
    payload.WriteU32(static_cast<uint32_t>(h));
    table->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kMarkov, payload.TakeBuffer());
  }
  if (s.rates != nullptr) {
    Writer payload;
    s.rates->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kClosingRates,
                          payload.TakeBuffer());
  }
  if (s.catalog != nullptr) {
    Writer payload;
    s.catalog->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kDegreeCatalog,
                          payload.TakeBuffer());
  }
  if (s.dispersion != nullptr) {
    Writer payload;
    s.dispersion->ExportEntries(payload, shard, num_shards);
    sections.emplace_back(SnapshotSection::kDispersion, payload.TakeBuffer());
  }
  return sections;
}

/// The whole-graph summary sections. Never sharded: their internal
/// structure (superedge tables between SumRDF buckets, the CS group table)
/// is not key-separable, so they travel in the manifest's common file.
SectionList BuildSummarySections(const StatsRefs& s) {
  SectionList sections;
  if (s.char_sets != nullptr) {
    Writer payload;
    s.char_sets->Save(payload);
    sections.emplace_back(SnapshotSection::kCharSets, payload.TakeBuffer());
  }
  if (s.summary != nullptr) {
    Writer payload;
    s.summary->Save(payload);
    sections.emplace_back(SnapshotSection::kSummaryGraph,
                          payload.TakeBuffer());
  }
  return sections;
}

/// The dynamic-state stamp (and optionally the embedded replay log) of a
/// post-delta context; empty at epoch 0. See the comments at the original
/// SaveSnapshot call sites: the stamp records which point of the delta log
/// the statistics describe, and the log makes the artifact self-contained
/// — but only while nothing has been trimmed (a partial log could not
/// reconstruct the state from the base graph, so it is omitted entirely).
SectionList BuildDynamicSections(
    uint64_t epoch, uint64_t delta_hash,
    const graph::GraphFingerprint& current_fp,
    const std::vector<dynamic::EdgeDelta>& replay_log, size_t log_trimmed,
    bool include_delta_log) {
  SectionList sections;
  if (epoch == 0) return sections;
  Writer payload;
  payload.WriteU64(delta_hash);
  payload.WriteU64(epoch);
  WriteFingerprint(payload, current_fp);
  sections.emplace_back(SnapshotSection::kDynamicState, payload.TakeBuffer());
  if (include_delta_log && log_trimmed == 0) {
    Writer log;
    log.WriteU64(replay_log.size());
    for (const dynamic::EdgeDelta& d : replay_log) {
      log.WriteU8(static_cast<uint8_t>(d.op));
      log.WriteU32(d.edge.src);
      log.WriteU32(d.edge.dst);
      log.WriteU32(d.edge.label);
    }
    sections.emplace_back(SnapshotSection::kDeltaLog, log.TakeBuffer());
  }
  return sections;
}

/// One complete snapshot file image: header + section table.
std::string EncodeSnapshotFile(uint32_t version,
                               const graph::GraphFingerprint& base_fp,
                               const SnapshotOptions& options,
                               const SectionList& sections) {
  Writer writer;
  writer.WriteRaw(std::string_view(kSnapshotMagic, 8));
  writer.WriteU32(version);
  WriteFingerprint(writer, base_fp);
  WriteOptions(writer, options);
  writer.WriteU32(static_cast<uint32_t>(sections.size()));
  for (const auto& [id, payload] : sections) {
    writer.WriteU32(static_cast<uint32_t>(id));
    writer.WriteU64(payload.size());
    writer.WriteRaw(payload);
  }
  return writer.TakeBuffer();
}

/// Resolves a manifest-stored (relative) file name against the manifest's
/// own directory.
std::string ResolveManifestFile(const std::string& manifest_path,
                                const std::string& file) {
  const std::filesystem::path p(file);
  if (p.is_absolute()) return file;
  return (std::filesystem::path(manifest_path).parent_path() / p).string();
}

}  // namespace

const char* SnapshotSectionName(uint32_t id) {
  switch (static_cast<SnapshotSection>(id)) {
    case SnapshotSection::kMarkov:
      return "markov";
    case SnapshotSection::kClosingRates:
      return "closing-rates";
    case SnapshotSection::kDegreeCatalog:
      return "degree-catalog";
    case SnapshotSection::kCharSets:
      return "char-sets";
    case SnapshotSection::kSummaryGraph:
      return "summary-graph";
    case SnapshotSection::kDispersion:
      return "dispersion";
    case SnapshotSection::kDynamicState:
      return "dynamic-state";
    case SnapshotSection::kDeltaLog:
      return "delta-log";
  }
  return "unknown";
}

util::StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  info->file_bytes = bytes->size();
  // Static snapshots describe the base graph itself; a kDynamicState
  // section overrides this below.
  info->current_fingerprint = info->fingerprint;

  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();

    SnapshotSectionInfo section;
    section.id = *id;
    section.name = SnapshotSectionName(*id);
    section.payload_bytes = *length;
    // Every known section's payload leads with its entry count, except
    // markov (u32 h first) and char-sets / summary-graph (a u32 shape
    // field first).
    Reader sub(*payload);
    switch (static_cast<SnapshotSection>(*id)) {
      case SnapshotSection::kMarkov: {
        auto h = sub.ReadU32();
        if (!h.ok()) return h.status();
        section.markov_h = *h;
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kCharSets:
      case SnapshotSection::kSummaryGraph: {
        auto shape = sub.ReadU32();
        if (!shape.ok()) return shape.status();
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kClosingRates:
      case SnapshotSection::kDegreeCatalog:
      case SnapshotSection::kDispersion: {
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      case SnapshotSection::kDynamicState: {
        auto delta_hash = sub.ReadU64();
        if (!delta_hash.ok()) return delta_hash.status();
        auto epoch = sub.ReadU64();
        if (!epoch.ok()) return epoch.status();
        auto current = ReadFingerprint(sub);
        if (!current.ok()) return current.status();
        info->delta_hash = *delta_hash;
        info->epoch = *epoch;
        info->current_fingerprint = *current;
        section.entries = *epoch;
        break;
      }
      case SnapshotSection::kDeltaLog: {
        auto entries = sub.ReadU64();
        if (!entries.ok()) return entries.status();
        section.entries = *entries;
        break;
      }
      default:
        break;  // unknown section: size only
    }
    info->sections.push_back(std::move(section));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after last section");
  }
  return *info;
}

bool IsShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, 8);
  return in.gcount() == 8 &&
         std::memcmp(magic, kShardManifestMagic, 8) == 0;
}

util::StatusOr<ShardManifest> ReadShardManifest(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Reader reader(*bytes);
  auto magic = reader.ReadRaw(8);
  if (!magic.ok()) return magic.status();
  if (std::memcmp(magic->data(), kShardManifestMagic, 8) != 0) {
    return util::InvalidArgumentError("not a cegraph shard manifest");
  }
  ShardManifest manifest;
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kShardManifestVersion) {
    return util::InvalidArgumentError(
        "unsupported shard-manifest version " + std::to_string(*version));
  }
  manifest.version = *version;
  auto fp = ReadFingerprint(reader);
  if (!fp.ok()) return fp.status();
  manifest.fingerprint = *fp;
  auto options = ReadOptions(reader);
  if (!options.ok()) return options.status();
  manifest.options = *options;
  auto snapshot_version = reader.ReadU32();
  if (!snapshot_version.ok()) return snapshot_version.status();
  if (*snapshot_version < 1 || *snapshot_version > kSnapshotVersion) {
    return util::InvalidArgumentError(
        "manifest names unsupported snapshot version " +
        std::to_string(*snapshot_version));
  }
  manifest.snapshot_version = *snapshot_version;
  auto num_shards = reader.ReadU32();
  if (!num_shards.ok()) return num_shards.status();
  if (*num_shards < 1 || *num_shards > kMaxSnapshotShards) {
    return util::InvalidArgumentError(
        "implausible manifest shard count " + std::to_string(*num_shards));
  }
  manifest.num_shards = *num_shards;
  auto common_file = reader.ReadString();
  if (!common_file.ok()) return common_file.status();
  manifest.common.file = std::move(*common_file);
  auto common_bytes = reader.ReadU64();
  if (!common_bytes.ok()) return common_bytes.status();
  manifest.common.bytes = *common_bytes;
  auto common_hash = reader.ReadU64();
  if (!common_hash.ok()) return common_hash.status();
  manifest.common.hash = *common_hash;
  auto entry_count = reader.ReadU32();
  if (!entry_count.ok()) return entry_count.status();

  // The shard table must be a partition: every id 0..num_shards-1 exactly
  // once. A duplicate is an *overlap* (two files both claiming a key
  // range); a gap is a missing shard; either silently skews estimates if
  // accepted, so both are hard errors.
  std::vector<bool> seen(manifest.num_shards, false);
  for (uint32_t i = 0; i < *entry_count; ++i) {
    ShardFileInfo entry;
    auto shard = reader.ReadU32();
    if (!shard.ok()) return shard.status();
    entry.shard = *shard;
    auto file = reader.ReadString();
    if (!file.ok()) return file.status();
    entry.file = std::move(*file);
    auto file_bytes = reader.ReadU64();
    if (!file_bytes.ok()) return file_bytes.status();
    entry.bytes = *file_bytes;
    auto hash = reader.ReadU64();
    if (!hash.ok()) return hash.status();
    entry.hash = *hash;
    if (entry.shard >= manifest.num_shards) {
      return util::InvalidArgumentError(
          "manifest shard id " + std::to_string(entry.shard) +
          " out of range (manifest declares " +
          std::to_string(manifest.num_shards) + " shards)");
    }
    if (seen[entry.shard]) {
      return util::InvalidArgumentError(
          "manifest lists shard " + std::to_string(entry.shard) +
          " more than once (overlapping key ranges)");
    }
    seen[entry.shard] = true;
    manifest.shards.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after manifest");
  }
  for (uint32_t k = 0; k < manifest.num_shards; ++k) {
    if (!seen[k]) {
      return util::InvalidArgumentError(
          "manifest is missing shard " + std::to_string(k) + " of " +
          std::to_string(manifest.num_shards));
    }
  }
  std::sort(manifest.shards.begin(), manifest.shards.end(),
            [](const ShardFileInfo& a, const ShardFileInfo& b) {
              return a.shard < b.shard;
            });
  return manifest;
}

namespace {

/// The delta-log extraction over one snapshot image (the body shared by
/// the file and manifest paths of ReadSnapshotDeltaLog).
util::StatusOr<std::vector<dynamic::EdgeDelta>> ParseSnapshotDeltaLog(
    std::string_view bytes);

}  // namespace

util::StatusOr<std::vector<dynamic::EdgeDelta>> ReadSnapshotDeltaLog(
    const std::string& path) {
  if (IsShardManifest(path)) {
    auto manifest = ReadShardManifest(path);
    if (!manifest.ok()) return manifest.status();
    // The common file (where the embedded log lives) gets the same
    // integrity treatment LoadSnapshotShards gives it: size + content
    // hash against the manifest before a byte is parsed. This also rules
    // out nesting/recursion — a manifest cannot record a valid hash of a
    // file containing that hash, and the magic check below rejects any
    // manifest-typed bytes outright.
    auto bytes =
        ReadFileBytes(ResolveManifestFile(path, manifest->common.file));
    if (!bytes.ok()) {
      return util::NotFoundError("manifest names missing shard file " +
                                 manifest->common.file + ": " +
                                 bytes.status().message());
    }
    if (bytes->size() != manifest->common.bytes ||
        util::StableHash64(*bytes) != manifest->common.hash) {
      return util::InvalidArgumentError(
          "shard file " + manifest->common.file +
          " does not match its manifest entry (corrupted or replaced)");
    }
    if (bytes->size() >= 8 &&
        std::memcmp(bytes->data(), kShardManifestMagic, 8) == 0) {
      return util::InvalidArgumentError(
          "manifest common entry " + manifest->common.file +
          " is itself a shard manifest (manifests cannot nest)");
    }
    return ParseSnapshotDeltaLog(*bytes);
  }
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return ParseSnapshotDeltaLog(*bytes);
}

namespace {

util::StatusOr<std::vector<dynamic::EdgeDelta>> ParseSnapshotDeltaLog(
    std::string_view bytes) {
  Reader reader(bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  std::vector<dynamic::EdgeDelta> log;
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();
    if (static_cast<SnapshotSection>(*id) != SnapshotSection::kDeltaLog) {
      continue;
    }
    Reader sub(*payload);
    auto count = sub.ReadU64();
    if (!count.ok()) return count.status();
    // Each op is 13 bytes; bound before allocating.
    if (*count > sub.remaining() / 13) {
      return util::InvalidArgumentError("implausible delta-log length");
    }
    log.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      auto op = sub.ReadU8();
      if (!op.ok()) return op.status();
      if (*op > 1) {
        return util::InvalidArgumentError("unknown delta op in snapshot");
      }
      auto src = sub.ReadU32();
      if (!src.ok()) return src.status();
      auto dst = sub.ReadU32();
      if (!dst.ok()) return dst.status();
      auto label = sub.ReadU32();
      if (!label.ok()) return label.status();
      log.push_back({{*src, *dst, *label},
                     static_cast<dynamic::DeltaOp>(*op)});
    }
  }
  return log;
}

}  // namespace

util::Status EstimationContext::SaveSnapshot(const std::string& path) const {
  // Collect stable pointers to everything built so far. Lazy fills only
  // ever *set* these unique_ptrs, and each Export takes its own cache
  // lock, so serialization can proceed outside the context mutex
  // (concurrent fills land either before or after the export — both are
  // consistent snapshots). Mutations that *replace* the structures
  // (ApplyDeltas, a stale LoadSnapshot) would free the collected
  // pointees mid-export; they are single-writer operations that must not
  // run concurrently with SaveSnapshot — the serving layer guarantees
  // this by saving only from states the maintainer owns.
  StatsRefs refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [h, table] : markov_) {
      refs.markovs.emplace_back(h, table.get());
    }
    refs.rates = rates_.get();
    refs.catalog = catalog_.get();
    refs.char_sets = char_sets_.get();
    refs.summary = summary_.get();
    refs.dispersion = dispersion_.get();
  }

  SectionList sections = BuildKeyedSections(refs, 0, 0);
  for (auto& section : BuildSummarySections(refs)) {
    sections.push_back(std::move(section));
  }
  for (auto& section :
       BuildDynamicSections(epoch_, delta_hash_, g_->fingerprint(),
                            replay_log_, log_trimmed_,
                            /*include_delta_log=*/true)) {
    sections.push_back(std::move(section));
  }
  return WriteFileBytes(
      path, EncodeSnapshotFile(
                epoch_ > 0 ? kSnapshotVersion : kSnapshotVersionStatic,
                base_fingerprint_, OptionsOf(options_), sections));
}

util::Status EstimationContext::SaveSnapshotShards(
    const std::string& manifest_path, uint32_t num_shards) const {
  if (num_shards < 1 || num_shards > kMaxSnapshotShards) {
    return util::InvalidArgumentError(
        "shard count must be in 1.." + std::to_string(kMaxSnapshotShards) +
        ", got " + std::to_string(num_shards));
  }
  StatsRefs refs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [h, table] : markov_) {
      refs.markovs.emplace_back(h, table.get());
    }
    refs.rates = rates_.get();
    refs.catalog = catalog_.get();
    refs.char_sets = char_sets_.get();
    refs.summary = summary_.get();
    refs.dispersion = dispersion_.get();
  }
  const uint32_t version =
      epoch_ > 0 ? kSnapshotVersion : kSnapshotVersionStatic;
  const SnapshotOptions options = OptionsOf(options_);
  const std::string base_name =
      std::filesystem::path(manifest_path).filename().string();

  // Every file carries the dynamic-state stamp (so each can be judged
  // fresh/stale on its own); only the common file embeds the replay log.
  const SectionList dynamic_stamp =
      BuildDynamicSections(epoch_, delta_hash_, g_->fingerprint(),
                           replay_log_, log_trimmed_,
                           /*include_delta_log=*/false);

  // Common file: the whole-graph summaries + dynamic state + delta log.
  ShardFileInfo common;
  common.file = base_name + ".common";
  {
    SectionList sections = BuildSummarySections(refs);
    for (auto& section :
         BuildDynamicSections(epoch_, delta_hash_, g_->fingerprint(),
                              replay_log_, log_trimmed_,
                              /*include_delta_log=*/true)) {
      sections.push_back(std::move(section));
    }
    const std::string bytes =
        EncodeSnapshotFile(version, base_fingerprint_, options, sections);
    common.bytes = bytes.size();
    common.hash = util::StableHash64(bytes);
    CEGRAPH_RETURN_IF_ERROR(WriteFileBytes(
        ResolveManifestFile(manifest_path, common.file), bytes));
  }

  // Shard k of S: the keyed sections filtered by key-hash range. Each
  // pass re-walks every cache and keeps the one-in-S entries — O(S x
  // entries) hashing overall, accepted for this offline tool path (the
  // caches hold thousands of entries and FNV over short keys is
  // nanoseconds; single-pass routing into S writers would complicate the
  // ExportEntries surface for no observable gain at current scales).
  std::vector<ShardFileInfo> shards;
  shards.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    ShardFileInfo shard;
    shard.shard = k;
    shard.file = base_name + ".shard" + std::to_string(k);
    SectionList sections = BuildKeyedSections(refs, k, num_shards);
    for (const auto& section : dynamic_stamp) sections.push_back(section);
    const std::string bytes =
        EncodeSnapshotFile(version, base_fingerprint_, options, sections);
    shard.bytes = bytes.size();
    shard.hash = util::StableHash64(bytes);
    CEGRAPH_RETURN_IF_ERROR(WriteFileBytes(
        ResolveManifestFile(manifest_path, shard.file), bytes));
    shards.push_back(std::move(shard));
  }

  Writer writer;
  writer.WriteRaw(std::string_view(kShardManifestMagic, 8));
  writer.WriteU32(kShardManifestVersion);
  WriteFingerprint(writer, base_fingerprint_);
  WriteOptions(writer, options);
  writer.WriteU32(version);
  writer.WriteU32(num_shards);
  writer.WriteString(common.file);
  writer.WriteU64(common.bytes);
  writer.WriteU64(common.hash);
  writer.WriteU32(static_cast<uint32_t>(shards.size()));
  for (const ShardFileInfo& shard : shards) {
    writer.WriteU32(shard.shard);
    writer.WriteString(shard.file);
    writer.WriteU64(shard.bytes);
    writer.WriteU64(shard.hash);
  }
  return WriteFileBytes(manifest_path, writer.buffer());
}

util::Status EstimationContext::LoadSnapshot(const std::string& path,
                                             SnapshotLoadReport* report)
    const {
  // A shard manifest is accepted anywhere a monolithic snapshot is: it
  // loads the union of all shards (fleet processes that want a subset call
  // LoadSnapshotShards with an explicit shard list).
  if (IsShardManifest(path)) return LoadSnapshotShards(path, {}, report);
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return LoadSnapshotBytes(*bytes, report);
}

util::Status EstimationContext::LoadSnapshotBytes(
    std::string_view bytes, SnapshotLoadReport* report, bool validate_only,
    bool scrub_stale) const {
  Reader reader(bytes);
  auto info = ReadHeader(reader);
  if (!info.ok()) return info.status();
  // Reject statistics computed under different construction knobs: they
  // would merge cleanly but answer wrongly (e.g. over-cap verdicts from a
  // smaller materialize cap, rates from a different sampling setup, a
  // summary with a different bucket target). markov_h is exempt — Markov
  // sections carry their own h and their entries are exact counts.
  SnapshotOptions expected = OptionsOf(options_);
  SnapshotOptions actual = info->options;
  expected.markov_h = 0;
  actual.markov_h = 0;
  if (!(expected == actual)) {
    return util::FailedPreconditionError(
        "snapshot built under different context options (summary buckets " +
        std::to_string(info->options.summary_buckets) + "/" +
        std::to_string(options_.summary_buckets) + ", materialize cap " +
        std::to_string(info->options.stats_materialize_cap) + "/" +
        std::to_string(options_.stats_materialize_cap) +
        ", cycle-closing sampling " +
        std::to_string(info->options.cc_walks_per_key) + "x" +
        std::to_string(info->options.cc_max_attempt_factor) + "/" +
        std::to_string(info->options.cc_max_mid_hops) + " seed " +
        std::to_string(info->options.cc_seed) + ")");
  }

  auto section_count = reader.ReadU32();
  if (!section_count.ok()) return section_count.status();
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.reserve(*section_count);
  for (uint32_t s = 0; s < *section_count; ++s) {
    auto id = reader.ReadU32();
    if (!id.ok()) return id.status();
    auto length = reader.ReadU64();
    if (!length.ok()) return length.status();
    auto payload = reader.ReadRaw(static_cast<size_t>(*length));
    if (!payload.ok()) return payload.status();
    sections.emplace_back(*id, std::move(*payload));
  }
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("trailing bytes after last section");
  }

  // The snapshot's point in the delta log — (delta hash, epoch) plus the
  // fingerprint of the graph its statistics actually describe. Static
  // (version 1 / epoch 0) files describe the base graph itself.
  uint64_t snap_delta_hash = 0;
  uint64_t snap_epoch = 0;
  graph::GraphFingerprint snap_current = info->fingerprint;
  bool has_delta_log = false;
  for (const auto& [id, payload] : sections) {
    if (static_cast<SnapshotSection>(id) == SnapshotSection::kDeltaLog) {
      has_delta_log = true;
    }
    if (static_cast<SnapshotSection>(id) != SnapshotSection::kDynamicState) {
      continue;
    }
    Reader sub(payload);
    auto delta_hash = sub.ReadU64();
    if (!delta_hash.ok()) return delta_hash.status();
    auto epoch = sub.ReadU64();
    if (!epoch.ok()) return epoch.status();
    auto current = ReadFingerprint(sub);
    if (!current.ok()) return current.status();
    snap_delta_hash = *delta_hash;
    snap_epoch = *epoch;
    snap_current = *current;
  }

  // Freshness is judged by content first: statistics are a pure function
  // of (graph, options), so a snapshot whose described graph matches this
  // context's *current* graph merges fully, whatever lineage produced
  // either. Failing that, a snapshot taken at an earlier epoch of this
  // context's own delta log is stale-but-usable: keyed sections merge and
  // the missing deltas replay as targeted eviction + exact refresh.
  // Anything else is a mismatch that needs a rebuild — or, when the file
  // embeds its delta log, a reconstruction (replay the log onto the base
  // graph via ReadSnapshotDeltaLog + ApplyDeltas, then load fresh).
  // The snapshot's epoch must still be in the (possibly trimmed) history
  // window: MarkAt returns null both for epochs newer than this context
  // and for epochs whose replay suffix TrimReplayLog has discarded.
  const bool fresh = snap_current == g_->fingerprint();
  const EpochMark* mark = MarkAt(snap_epoch);
  if (!fresh && (!(info->fingerprint == base_fingerprint_) ||
                 mark == nullptr || mark->delta_hash != snap_delta_hash)) {
    return util::FailedPreconditionError(
        "snapshot fingerprint mismatch: statistics describe graph " +
        DescribeFingerprint(snap_current) + " (base " +
        DescribeFingerprint(info->fingerprint) + ", epoch " +
        std::to_string(snap_epoch) + "), context graph is " +
        DescribeFingerprint(g_->fingerprint()) + " (base " +
        DescribeFingerprint(base_fingerprint_) + ", epoch " +
        std::to_string(epoch_) + ") — " +
        (has_delta_log
             ? "replay the snapshot's embedded delta log onto its base "
               "graph (ReadSnapshotDeltaLog + ApplyDeltas), or rebuild"
             : "rebuild the snapshot for this graph state"));
  }
  const bool stale = !fresh;
  if (report != nullptr) {
    report->stale = stale;
    report->snapshot_epoch = snap_epoch;
    report->replayed_deltas =
        stale ? replay_log_.size() - (mark->log_size - log_trimmed_) : 0;
    report->evicted_entries = 0;
  }

  // Two-phase apply: the staging pass parses and validates every section
  // into throwaway structures, so a snapshot that is corrupted mid-file
  // never leaves partially imported entries in the live caches — a failed
  // load keeps the context exactly as it was. Parsing is deterministic, so
  // the live pass cannot fail where the staging pass succeeded.
  struct Staging {
    std::unique_ptr<stats::MarkovTable> markov;
    stats::CycleClosingRates rates;
    stats::StatsCatalog catalog;
    stats::DispersionCatalog dispersion;
    explicit Staging(const graph::Graph& g)
        : rates(g), catalog(g), dispersion(g) {}
  };
  Staging staging(*g_);
  for (const bool dry_run : {true, false}) {
    // Parsing is deterministic, so a validate-only pass that succeeds
    // guarantees the later apply pass cannot fail on the same bytes.
    if (!dry_run && validate_only) break;
    for (const auto& [id, payload] : sections) {
      // Stale loads skip the whole-graph summaries: they describe the
      // snapshot's epoch wholesale and have no per-key invalidation — the
      // live context rebuilds them lazily from the current graph instead.
      const auto section = static_cast<SnapshotSection>(id);
      if (stale && (section == SnapshotSection::kCharSets ||
                    section == SnapshotSection::kSummaryGraph)) {
        continue;
      }
      Reader sub(payload);
      switch (section) {
        case SnapshotSection::kMarkov: {
          auto h = sub.ReadU32();
          if (!h.ok()) return h.status();
          if (*h < 1 || *h > 16) {
            return util::InvalidArgumentError(
                "implausible Markov table size " + std::to_string(*h));
          }
          if (dry_run) {
            staging.markov = std::make_unique<stats::MarkovTable>(
                *g_, static_cast<int>(*h));
            CEGRAPH_RETURN_IF_ERROR(staging.markov->ImportEntries(sub));
          } else {
            auto table = TryMarkov(static_cast<int>(*h));
            if (!table.ok()) return table.status();
            CEGRAPH_RETURN_IF_ERROR((*table)->ImportEntries(sub));
          }
          break;
        }
        case SnapshotSection::kClosingRates:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.rates : cycle_closing_rates())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kDegreeCatalog:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.catalog : stats_catalog())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kCharSets: {
          auto loaded = stats::CharacteristicSets::Load(sub);
          if (!loaded.ok()) return loaded.status();
          if (loaded->num_graph_vertices() != g_->num_vertices()) {
            return util::InvalidArgumentError(
                "characteristic-set summary built over a different vertex "
                "count");
          }
          if (!dry_run) {
            std::lock_guard<std::mutex> lock(mutex_);
            // Adopt only if not yet built: estimators may already hold a
            // reference to an eagerly built summary, and the loaded one
            // is identical by construction determinism anyway.
            if (char_sets_ == nullptr) {
              char_sets_ = std::make_unique<stats::CharacteristicSets>(
                  std::move(*loaded));
            }
          }
          break;
        }
        case SnapshotSection::kSummaryGraph: {
          auto loaded = stats::SummaryGraph::Load(sub);
          if (!loaded.ok()) return loaded.status();
          // The SumRDF estimator indexes superedge tables by data-graph
          // label, so a summary whose label space does not match the
          // context graph would be undefined behavior, not just wrong.
          if (loaded->num_labels() != g_->num_labels()) {
            return util::InvalidArgumentError(
                "summary graph built over a different label count");
          }
          if (!dry_run) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (summary_ == nullptr) {
              summary_ = std::make_unique<stats::SummaryGraph>(
                  std::move(*loaded));
            }
          }
          break;
        }
        case SnapshotSection::kDispersion:
          CEGRAPH_RETURN_IF_ERROR(
              (dry_run ? staging.dispersion : dispersion_catalog())
                  .ImportEntries(sub));
          break;
        case SnapshotSection::kDynamicState:
          continue;  // already parsed above
        default:
          continue;  // unknown section: written by a newer build, skip
      }
      if (!sub.AtEnd()) {
        return util::InvalidArgumentError(
            std::string("section ") + SnapshotSectionName(id) +
            " has trailing bytes (corrupted snapshot)");
      }
    }
  }

  if (stale && !validate_only && scrub_stale) {
    // Replay the delta-log suffix the snapshot has not seen: the merged
    // entries were computed at the snapshot's epoch, so every entry whose
    // labels the missing deltas touched is evicted (and the cheap exact
    // entries refreshed from the current graph). Entries the live context
    // had already computed for the current epoch can only be over-evicted
    // by this — they lazily recompute to the same values.
    const std::vector<bool> changed = dynamic::ChangedLabelBitmap(
        g_->num_labels(),
        std::span<const dynamic::EdgeDelta>(replay_log_)
            .subspan(mark->log_size - log_trimmed_));
    size_t evicted = 0;
    std::vector<const stats::MarkovTable*> tables;
    const stats::CycleClosingRates* rates = nullptr;
    const stats::StatsCatalog* catalog = nullptr;
    const stats::DispersionCatalog* dispersion = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [h, table] : markov_) tables.push_back(table.get());
      rates = rates_.get();
      catalog = catalog_.get();
      dispersion = dispersion_.get();
    }
    for (const stats::MarkovTable* table : tables) {
      evicted += dynamic::StatsMaintainer::ScrubMarkov(*table, changed);
    }
    if (rates != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubClosingRates(*rates, changed);
    }
    if (catalog != nullptr) {
      evicted += dynamic::StatsMaintainer::ScrubCatalog(*catalog, changed);
    }
    if (dispersion != nullptr) {
      evicted +=
          dynamic::StatsMaintainer::ScrubDispersion(*dispersion, changed);
    }
    if (report != nullptr) report->evicted_entries = evicted;
  }
  return util::Status::OK();
}

util::Status EstimationContext::LoadSnapshotShards(
    const std::string& manifest_path, const std::vector<uint32_t>& shards,
    SnapshotLoadReport* report) const {
  auto manifest = ReadShardManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();

  // The requested shard set: explicit ids (validated) or all of them.
  std::vector<uint32_t> selected = shards;
  if (selected.empty()) {
    selected.reserve(manifest->num_shards);
    for (uint32_t k = 0; k < manifest->num_shards; ++k) {
      selected.push_back(k);
    }
  } else {
    std::vector<bool> seen(manifest->num_shards, false);
    for (const uint32_t k : selected) {
      if (k >= manifest->num_shards) {
        return util::InvalidArgumentError(
            "requested shard " + std::to_string(k) +
            " out of range (manifest has " +
            std::to_string(manifest->num_shards) + " shards)");
      }
      if (seen[k]) {
        return util::InvalidArgumentError("requested shard " +
                                          std::to_string(k) + " twice");
      }
      seen[k] = true;
    }
  }

  // Integrity pass before anything merges: every selected file must exist
  // and match the manifest's size/content hash, so a corrupt or swapped
  // shard is a clean error and a failed load leaves the context untouched
  // (the per-file loads below each keep their own two-phase guarantee).
  // The verified bytes are held and parsed directly — re-reading the file
  // for the load would both double the I/O and open a window for the
  // bytes on disk to change after verification.
  std::vector<const ShardFileInfo*> infos = {&manifest->common};
  for (const uint32_t k : selected) infos.push_back(&manifest->shards[k]);
  std::vector<std::string> images;
  images.reserve(infos.size());
  for (const ShardFileInfo* info : infos) {
    auto bytes =
        ReadFileBytes(ResolveManifestFile(manifest_path, info->file));
    if (!bytes.ok()) {
      return util::NotFoundError("manifest names missing shard file " +
                                 info->file + ": " +
                                 bytes.status().message());
    }
    if (bytes->size() != info->bytes ||
        util::StableHash64(*bytes) != info->hash) {
      return util::InvalidArgumentError(
          "shard file " + info->file +
          " does not match its manifest entry (corrupted or replaced; "
          "expected " + std::to_string(info->bytes) + " bytes, got " +
          std::to_string(bytes->size()) + ")");
    }
    // A shard entry must be a snapshot, never another manifest — this is
    // what keeps manifest resolution strictly one level deep.
    if (bytes->size() >= 8 &&
        std::memcmp(bytes->data(), kShardManifestMagic, 8) == 0) {
      return util::InvalidArgumentError(
          "manifest entry " + info->file +
          " is itself a shard manifest (manifests cannot nest)");
    }
    images.push_back(std::move(*bytes));
  }

  // Validate every image before applying any: the manifest hash is
  // corruption detection, not authentication, so a malformed-but-
  // hash-consistent shard must fail here — with nothing merged — rather
  // than after earlier files already landed in the live caches. Parsing
  // is deterministic, so the apply pass below cannot fail where this
  // pass succeeded, which is what makes the multi-file load atomic.
  for (const std::string& image : images) {
    CEGRAPH_RETURN_IF_ERROR(
        LoadSnapshotBytes(image, nullptr, /*validate_only=*/true));
  }

  // Apply: common first (it resolves freshness/staleness for the
  // artifact), then each selected shard. All files of one artifact carry
  // the same epoch stamp, so the stale-entry scrub — which walks every
  // live cache wholesale — runs once, on the last image, instead of once
  // per file.
  SnapshotLoadReport merged;
  for (size_t i = 0; i < images.size(); ++i) {
    SnapshotLoadReport file_report;
    auto loaded =
        LoadSnapshotBytes(images[i], &file_report, /*validate_only=*/false,
                          /*scrub_stale=*/i + 1 == images.size());
    if (!loaded.ok()) return loaded;
    if (i == 0) {
      merged = file_report;
    } else {
      merged.stale |= file_report.stale;
      merged.replayed_deltas =
          std::max(merged.replayed_deltas, file_report.replayed_deltas);
      merged.evicted_entries += file_report.evicted_entries;
    }
  }
  if (report != nullptr) *report = merged;
  return util::Status::OK();
}

}  // namespace cegraph::engine
