#ifndef CEGRAPH_ENGINE_ESTIMATOR_REGISTRY_H_
#define CEGRAPH_ENGINE_ESTIMATOR_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/estimation_context.h"
#include "estimators/estimator.h"
#include "util/status.h"

namespace cegraph::engine {

/// Name -> factory registry of every estimator in the library. Construction
/// goes through a shared EstimationContext, so all estimators of one graph
/// borrow the same Markov tables, summaries and CEG cache instead of each
/// call site assembling its own stack (the boilerplate this replaces lived
/// in every bench and example).
///
/// Exact names (see RegisteredNames()):
///   - the 9 optimistic estimators of §4.2 on CEG_O ("max-hop-max",
///     "min-hop-avg", ...) and on CEG_OCR ("max-hop-max@ocr", ...); these
///     share per-query CEG builds through the context's CegCache;
///   - "molp", "molp+2j", "cbs" (pessimistic bounds, §5);
///   - "cs", "sumrdf", "rdf3x-default" (baselines, §6.4/§6.6);
///   - "min-cv-path", "min-entropy-path", "max-entropy" (§7/§8
///     future-work estimators over the same Markov statistics);
///   - "wj-0.25%" (WanderJoin at its default ratio, §6.5);
///   - "bs4(max-hop-max)", "bs4(molp)" (bound sketch, budget 4, §5.2.1).
///
/// Parameterized families also resolve dynamically:
///   - "wj-<pct>%"    e.g. "wj-0.75%" — WanderJoin at a sampling ratio;
///   - "bs<K>(inner)" e.g. "bs16(molp)" — bound sketch at budget K with
///     inner estimator "max-hop-max" or "molp".
class EstimatorRegistry {
 public:
  using EstimatorPtr = std::unique_ptr<CardinalityEstimator>;
  using Factory =
      std::function<util::StatusOr<EstimatorPtr>(const EstimationContext&)>;
  /// Dynamic-family handler: returns a factory iff it recognizes `name`.
  using PatternFactory = std::function<util::StatusOr<EstimatorPtr>(
      const std::string& name, const EstimationContext&)>;

  /// The registry with every built-in estimator (shared instance).
  static const EstimatorRegistry& Default();

  /// Registers an exact name. Later registrations win, so downstream code
  /// can override built-ins in a copy of Default().
  void Register(std::string name, Factory factory);
  /// Registers a dynamic family. `probe` must return true iff the family
  /// recognizes a name; `factory` is then consulted.
  void RegisterPattern(std::string description,
                       std::function<bool(const std::string&)> probe,
                       PatternFactory factory);

  bool Contains(const std::string& name) const;

  /// Constructs the named estimator over `context`. NotFound for unknown
  /// names. The context must outlive the estimator.
  util::StatusOr<EstimatorPtr> Create(const std::string& name,
                                      const EstimationContext& context) const;

  /// All exact names, sorted (dynamic families are documented in
  /// pattern_descriptions()).
  std::vector<std::string> RegisteredNames() const;
  std::vector<std::string> pattern_descriptions() const;

 private:
  struct Pattern {
    std::string description;
    std::function<bool(const std::string&)> probe;
    PatternFactory factory;
  };
  std::map<std::string, Factory> factories_;
  std::vector<Pattern> patterns_;
};

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_ESTIMATOR_REGISTRY_H_
