#ifndef CEGRAPH_ENGINE_SNAPSHOT_H_
#define CEGRAPH_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynamic/delta_graph.h"
#include "graph/graph.h"
#include "util/status.h"

namespace cegraph::engine {

/// The summary-snapshot file format (versions 1 and 2), written by
/// EstimationContext::SaveSnapshot and the `cegraph_stats` CLI. All
/// integers are little-endian (util::serde):
///
///   magic            8 bytes, "CEGSNAP1"
///   version          u32 (1 or 2)
///   fingerprint      u32 num_vertices, u32 num_labels,
///                    u32 num_vertex_labels, u64 num_edges, u64 edge_hash
///                    — the *base* graph's fingerprint
///   options          SnapshotOptions (see below)
///   section_count    u32
///   sections         section_count × { u32 id, u64 payload_bytes, payload }
///
/// Section payloads are produced by each statistics structure's own
/// ExportEntries/Save; unknown section ids are skipped on load, so newer
/// writers stay readable by older readers. Loads are double-guarded: the
/// fingerprint ties a snapshot to the exact graph it was built from, and
/// the options block ties it to the construction knobs that shape the
/// stored statistics' *values* — entries computed under a different
/// materialize cap, bucket count or sampling setup would load cleanly but
/// answer wrongly, so those are rejected too.
///
/// Version 2 (dynamic layer): a context that has applied edge deltas
/// stamps a kDynamicState section carrying its (delta-log hash, epoch,
/// current-graph fingerprint) plus a kDeltaLog section with the net replay
/// log, and bumps the version, because the stored statistics then describe
/// the *post-delta* graph while the header still carries the base
/// fingerprint — a version-1 reader must reject such a file rather than
/// load it against the pristine base. The embedded log makes the artifact
/// self-contained: a consumer holding only the base graph replays it
/// (ReadSnapshotDeltaLog + EstimationContext::ApplyDeltas) to reconstruct
/// the exact graph state the statistics describe, then loads fresh.
/// Contexts at epoch 0 keep writing version 1.
///
/// Version 3 (arena layout): a different *container* — the mmap-able
/// arena of util/arena.h (magic "CEGARNA1", 8-byte-aligned sections, an
/// explicit offset table) — carrying the same logical sections, re-encoded
/// to be usable in place after mmap:
///
///   kArenaMeta      serde: u32 snapshot_version (3), base fingerprint,
///                   options, u64 delta_hash, u64 epoch, current
///                   fingerprint (the v1/v2 header + kDynamicState folded
///                   into one section)
///   kMarkov         u32 h, u32 pad, then an ArenaIndexBuilder payload
///                   (key = canonical code, value = f64 cardinality);
///                   one section per table size h
///   kClosingRates   index payload (key = closing-key bytes, value = f64)
///   kDegreeCatalog  index payload (key = 8 LE bytes of the u64 label,
///                   value = DegreeMap) — the base-relation maps
///   kDegreeJoins    index payload (key = canonical code, value =
///                   u8 has_stats + QueryGraph + DegreeMap + f64) — the
///                   materialized two-join statistics (v1/v2 pack both
///                   catalogs into one kDegreeCatalog payload; the arena
///                   keeps two indexes so either probes in place)
///   kCharSets       CharacteristicSets::SaveArena flat layout
///   kSummaryGraph   the v2 SummaryGraph::Save bytes (parsed on load; the
///                   summary is small and its bucket tables are rebuilt
///                   into pointers anyway)
///   kDeltaLog       the v2 payload, verbatim
///
/// A fresh load attaches the keyed indexes behind the stats structures'
/// lookup APIs (copy-on-miss into the memo caches; see util/arena.h), so
/// time-to-first-estimate is the mmap plus header validation instead of a
/// full parse. Stale-but-replayable loads materialize every index into the
/// memo caches and then run the exact same delta-replay scrub as v2 loads.
inline constexpr char kSnapshotMagic[] = "CEGSNAP1";  // 8 chars + NUL
inline constexpr uint32_t kSnapshotVersion = 2;  ///< newest v2-container version
inline constexpr uint32_t kSnapshotVersionStatic = 1;  ///< epoch-0 files
inline constexpr uint32_t kSnapshotVersionArena = 3;   ///< arena container

/// The context options echoed into the header: everything that changes the
/// content (not just the coverage) of stored statistics. markov_h is
/// informational only — Markov sections carry their own h and entries are
/// exact counts, so cross-h reuse is safe; the other fields must match the
/// loading context exactly.
struct SnapshotOptions {
  uint32_t markov_h = 0;              ///< context default (informational)
  uint32_t summary_buckets = 0;       ///< SumRDF bucket target
  uint64_t stats_materialize_cap = 0; ///< two-join over-cap threshold
  uint32_t cc_walks_per_key = 0;      ///< cycle-closing sampling
  uint32_t cc_max_attempt_factor = 0;
  uint32_t cc_max_mid_hops = 0;
  uint64_t cc_seed = 0;

  friend bool operator==(const SnapshotOptions&,
                         const SnapshotOptions&) = default;
};

/// Section identifiers.
enum class SnapshotSection : uint32_t {
  kMarkov = 1,        ///< u32 h + MarkovTable::ExportEntries (one per h)
  kClosingRates = 2,  ///< CycleClosingRates::ExportEntries
  kDegreeCatalog = 3, ///< StatsCatalog::ExportEntries
  kCharSets = 4,      ///< CharacteristicSets::Save
  kSummaryGraph = 5,  ///< SummaryGraph::Save
  kDispersion = 6,    ///< DispersionCatalog::ExportEntries
  /// u64 delta-log hash + u64 epoch + current-graph fingerprint (v2).
  kDynamicState = 7,
  /// Net replay log: u64 count + count × { u8 op, u32 src, u32 dst,
  /// u32 label } (v2).
  kDeltaLog = 8,
  /// Arena-only: the folded header (snapshot version, base fingerprint,
  /// options, delta hash, epoch, current fingerprint). See the version-3
  /// notes above.
  kArenaMeta = 9,
  /// Arena-only: the two-join half of the degree catalog (v1/v2 pack it
  /// into kDegreeCatalog).
  kDegreeJoins = 10,
  /// Learned-feedback store (learn::FeedbackStore::Serialize): the
  /// per-query-class q-error correction state, guarded by its own
  /// base-fingerprint stamp so a load against a different graph
  /// discards it cleanly. Same payload in v1/v2 and arena containers
  /// (the store is small and rebuilt into a hash table on load anyway).
  /// Older readers skip the unknown id.
  kFeedback = 11,
};

/// Which on-disk container SaveSnapshot / SaveSnapshotShards emit.
enum class SnapshotFormat {
  kV2,     ///< serde-parsed container (version 1 or 2, per context epoch)
  kArena,  ///< mmap-able arena container (version 3)
};

/// Human-readable name for a section id ("markov", "closing-rates", ...);
/// "unknown" for ids this build does not recognize.
const char* SnapshotSectionName(uint32_t id);

// ---- Sharded snapshots ----
//
// A sharded snapshot is a *manifest* file plus a set of shard files, each
// of which is itself a well-formed snapshot carrying a subset of the
// monolithic sections:
//
//   common file   kCharSets + kSummaryGraph (+ kDynamicState, kDeltaLog)
//   shard k of S  the keyed sections (kMarkov, kClosingRates,
//                 kDegreeCatalog, kDispersion) filtered to the entries
//                 whose stable key hash falls in range k of an S-way split
//                 (+ kDynamicState), see util/shard.h
//
// The whole-graph summaries live in the common file because their internal
// structure is not key-separable (SumRDF superedge tables connect buckets;
// splitting them would change estimates, not just coverage), while every
// keyed cache partitions exactly: the union of all shards is entry-for-
// entry the monolithic snapshot. A fleet process loads the manifest with
// just its shard set and pays for a fraction of the stats — the lazy
// caches recompute anything outside the loaded set on demand, so a partial
// load is a performance choice, never a correctness one.
//
//   manifest := magic "CEGMANI1", u32 manifest_version,
//               fingerprint (base), options, u32 snapshot_version,
//               u32 num_shards,
//               string common_file, u64 common_bytes, u64 common_hash,
//               u32 entry_count, entry_count x {
//                 u32 shard_id, string file, u64 bytes, u64 hash }
//
// File names are stored relative to the manifest's directory; `hash` is
// the stable FNV-1a (util::StableHash64) of the named file's bytes, so a
// corrupt or swapped-out shard is rejected with a clear error before any
// section is parsed. A manifest must list every shard id 0..num_shards-1
// exactly once — missing, duplicate or out-of-range ids fail ReadShardManifest.
//
// Each referenced file's container format is sniffed by magic at load, so
// one manifest may mix arena (version 3) and v2 files: arena files are
// mmap'd and their bytes hash-verified in place, v2 files are read and
// parsed as before. `snapshot_version` records the format the manifest was
// *written* with and is informational for mixed sets.
inline constexpr char kShardManifestMagic[] = "CEGMANI1";  // 8 chars + NUL
inline constexpr uint32_t kShardManifestVersion = 1;
/// Upper bound on num_shards — far beyond any sane fleet, just a
/// corruption guard.
inline constexpr uint32_t kMaxSnapshotShards = 4096;

/// One file referenced by a shard manifest.
struct ShardFileInfo {
  uint32_t shard = 0;  ///< unused for the common file
  std::string file;    ///< relative to the manifest's directory
  uint64_t bytes = 0;
  uint64_t hash = 0;   ///< util::StableHash64 of the file's bytes
};

/// Parsed shard manifest.
struct ShardManifest {
  uint32_t version = 0;           ///< manifest format version
  uint32_t snapshot_version = 0;  ///< version of the shard files (1, 2 or 3)
  graph::GraphFingerprint fingerprint;
  SnapshotOptions options;
  uint32_t num_shards = 0;
  ShardFileInfo common;
  std::vector<ShardFileInfo> shards;  ///< sorted by shard id, 0..num_shards-1
};

/// True iff the file at `path` starts with the shard-manifest magic (the
/// cheap sniff LoadSnapshot/ReadSnapshotDeltaLog use to accept a manifest
/// anywhere a monolithic snapshot path is accepted). False for unreadable
/// files.
bool IsShardManifest(const std::string& path);

/// True iff the file at `path` starts with the arena magic "CEGARNA1" —
/// i.e. it is a version-3 snapshot that LoadSnapshot will route through the
/// mmap path. False for unreadable files.
bool IsArenaSnapshot(const std::string& path);

/// Reads and validates the manifest at `path`: magic/version, and that the
/// shard list covers 0..num_shards-1 exactly once (a missing id, a
/// duplicate/overlapping id, or an out-of-range id is InvalidArgument).
/// Does not open the shard files themselves.
util::StatusOr<ShardManifest> ReadShardManifest(const std::string& path);

/// One section as seen by `cegraph_stats inspect`: its id, size on disk,
/// and entry count (groups for char-sets, buckets for the summary graph,
/// cache entries otherwise).
struct SnapshotSectionInfo {
  uint32_t id = 0;
  std::string name;
  uint64_t payload_bytes = 0;
  uint64_t entries = 0;
  /// Only meaningful for kMarkov sections: the table size h.
  uint32_t markov_h = 0;
  /// Absolute byte offset of the payload in the file. Zero for v1/v2
  /// containers (sections are length-prefixed, not offset-addressed).
  uint64_t offset = 0;
};

/// Parsed snapshot header + section table, without applying anything to a
/// context (and without needing the graph).
struct SnapshotInfo {
  uint32_t version = 0;
  graph::GraphFingerprint fingerprint;
  SnapshotOptions options;
  uint64_t file_bytes = 0;
  /// Dynamic state (version 2); zero for static (epoch-0) snapshots.
  uint64_t delta_hash = 0;
  uint64_t epoch = 0;
  /// Fingerprint of the graph the stored statistics actually describe
  /// (== `fingerprint` for static snapshots, the compacted post-delta
  /// graph for version 2).
  graph::GraphFingerprint current_fingerprint;
  std::vector<SnapshotSectionInfo> sections;
};

/// Reads and validates the header and section table of the snapshot at
/// `path`. Rejects bad magic/version and truncated files with the same
/// errors LoadSnapshot would give.
util::StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// Reads just the embedded net delta log of the snapshot at `path` (empty
/// for static snapshots). Applying it to a context over the snapshot's
/// base graph reconstructs the exact graph state the statistics describe,
/// after which LoadSnapshot succeeds as a fresh load. A shard-manifest
/// path delegates to the manifest's common file (which is where the
/// embedded log lives).
util::StatusOr<std::vector<dynamic::EdgeDelta>> ReadSnapshotDeltaLog(
    const std::string& path);

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_SNAPSHOT_H_
