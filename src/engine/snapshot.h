#ifndef CEGRAPH_ENGINE_SNAPSHOT_H_
#define CEGRAPH_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace cegraph::engine {

/// The summary-snapshot file format (version 1), written by
/// EstimationContext::SaveSnapshot and the `cegraph_stats` CLI. All
/// integers are little-endian (util::serde):
///
///   magic            8 bytes, "CEGSNAP1"
///   version          u32 (= 1)
///   fingerprint      u32 num_vertices, u32 num_labels,
///                    u32 num_vertex_labels, u64 num_edges, u64 edge_hash
///   options          SnapshotOptions (see below)
///   section_count    u32
///   sections         section_count × { u32 id, u64 payload_bytes, payload }
///
/// Section payloads are produced by each statistics structure's own
/// ExportEntries/Save; unknown section ids are skipped on load, so newer
/// writers stay readable by older readers. Loads are double-guarded: the
/// fingerprint ties a snapshot to the exact graph it was built from, and
/// the options block ties it to the construction knobs that shape the
/// stored statistics' *values* — entries computed under a different
/// materialize cap, bucket count or sampling setup would load cleanly but
/// answer wrongly, so those are rejected too.
inline constexpr char kSnapshotMagic[] = "CEGSNAP1";  // 8 chars + NUL
inline constexpr uint32_t kSnapshotVersion = 1;

/// The context options echoed into the header: everything that changes the
/// content (not just the coverage) of stored statistics. markov_h is
/// informational only — Markov sections carry their own h and entries are
/// exact counts, so cross-h reuse is safe; the other fields must match the
/// loading context exactly.
struct SnapshotOptions {
  uint32_t markov_h = 0;              ///< context default (informational)
  uint32_t summary_buckets = 0;       ///< SumRDF bucket target
  uint64_t stats_materialize_cap = 0; ///< two-join over-cap threshold
  uint32_t cc_walks_per_key = 0;      ///< cycle-closing sampling
  uint32_t cc_max_attempt_factor = 0;
  uint32_t cc_max_mid_hops = 0;
  uint64_t cc_seed = 0;

  friend bool operator==(const SnapshotOptions&,
                         const SnapshotOptions&) = default;
};

/// Section identifiers of format version 1.
enum class SnapshotSection : uint32_t {
  kMarkov = 1,        ///< u32 h + MarkovTable::ExportEntries (one per h)
  kClosingRates = 2,  ///< CycleClosingRates::ExportEntries
  kDegreeCatalog = 3, ///< StatsCatalog::ExportEntries
  kCharSets = 4,      ///< CharacteristicSets::Save
  kSummaryGraph = 5,  ///< SummaryGraph::Save
  kDispersion = 6,    ///< DispersionCatalog::ExportEntries
};

/// Human-readable name for a section id ("markov", "closing-rates", ...);
/// "unknown" for ids this build does not recognize.
const char* SnapshotSectionName(uint32_t id);

/// One section as seen by `cegraph_stats inspect`: its id, size on disk,
/// and entry count (groups for char-sets, buckets for the summary graph,
/// cache entries otherwise).
struct SnapshotSectionInfo {
  uint32_t id = 0;
  std::string name;
  uint64_t payload_bytes = 0;
  uint64_t entries = 0;
  /// Only meaningful for kMarkov sections: the table size h.
  uint32_t markov_h = 0;
};

/// Parsed snapshot header + section table, without applying anything to a
/// context (and without needing the graph).
struct SnapshotInfo {
  uint32_t version = 0;
  graph::GraphFingerprint fingerprint;
  SnapshotOptions options;
  uint64_t file_bytes = 0;
  std::vector<SnapshotSectionInfo> sections;
};

/// Reads and validates the header and section table of the snapshot at
/// `path`. Rejects bad magic/version and truncated files with the same
/// errors LoadSnapshot would give.
util::StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_SNAPSHOT_H_
