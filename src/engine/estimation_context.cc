#include "engine/estimation_context.h"

namespace cegraph::engine {

const stats::MarkovTable& EstimationContext::markov(int h) const {
  auto table = TryMarkov(h);
  if (!table.ok()) {
    // A negative Markov size is a programming bug, not a recoverable
    // condition — surface it loudly instead of silently building a
    // degenerate table that would answer every lookup with "not covered".
    util::internal::StatusOrCrash("EstimationContext::markov: " +
                                  table.status().ToString());
  }
  return **table;
}

util::StatusOr<const stats::MarkovTable*> EstimationContext::TryMarkov(
    int h) const {
  if (h < 0) {
    return util::InvalidArgumentError(
        "Markov table size h must be >= 0 (0 = context default), got " +
        std::to_string(h));
  }
  if (h == 0) h = options_.markov_h;
  if (h < 1) {
    return util::InvalidArgumentError(
        "context default markov_h must be >= 1, got " + std::to_string(h));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = markov_.find(h);
  if (it == markov_.end()) {
    it = markov_.emplace(h, std::make_unique<stats::MarkovTable>(g_, h)).first;
  }
  return it->second.get();
}

const stats::CycleClosingRates& EstimationContext::cycle_closing_rates()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rates_ == nullptr) {
    rates_ = std::make_unique<stats::CycleClosingRates>(
        g_, options_.cycle_closing);
  }
  return *rates_;
}

const stats::StatsCatalog& EstimationContext::stats_catalog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<stats::StatsCatalog>(
        g_, options_.stats_materialize_cap);
  }
  return *catalog_;
}

const stats::CharacteristicSets& EstimationContext::characteristic_sets()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (char_sets_ == nullptr) {
    char_sets_ = std::make_unique<stats::CharacteristicSets>(g_);
  }
  return *char_sets_;
}

const stats::SummaryGraph& EstimationContext::summary_graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (summary_ == nullptr) {
    summary_ = std::make_unique<stats::SummaryGraph>(
        g_, options_.summary_buckets);
  }
  return *summary_;
}

const stats::DispersionCatalog& EstimationContext::dispersion_catalog()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dispersion_ == nullptr) {
    dispersion_ = std::make_unique<stats::DispersionCatalog>(g_);
  }
  return *dispersion_;
}

}  // namespace cegraph::engine
