#include "engine/estimation_context.h"

#include <utility>

#include "util/serde.h"

namespace cegraph::engine {

const stats::MarkovTable& EstimationContext::markov(int h) const {
  auto table = TryMarkov(h);
  if (!table.ok()) {
    // A negative Markov size is a programming bug, not a recoverable
    // condition — surface it loudly instead of silently building a
    // degenerate table that would answer every lookup with "not covered".
    util::internal::StatusOrCrash("EstimationContext::markov: " +
                                  table.status().ToString());
  }
  return **table;
}

util::StatusOr<const stats::MarkovTable*> EstimationContext::TryMarkov(
    int h) const {
  if (h < 0) {
    return util::InvalidArgumentError(
        "Markov table size h must be >= 0 (0 = context default), got " +
        std::to_string(h));
  }
  if (h == 0) h = options_.markov_h;
  if (h < 1) {
    return util::InvalidArgumentError(
        "context default markov_h must be >= 1, got " + std::to_string(h));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = markov_.find(h);
  if (it == markov_.end()) {
    it = markov_.emplace(h, std::make_unique<stats::MarkovTable>(*g_, h))
             .first;
  }
  return it->second.get();
}

const stats::CycleClosingRates& EstimationContext::cycle_closing_rates()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rates_ == nullptr) {
    rates_ = std::make_unique<stats::CycleClosingRates>(
        *g_, options_.cycle_closing);
  }
  return *rates_;
}

const stats::StatsCatalog& EstimationContext::stats_catalog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<stats::StatsCatalog>(
        *g_, options_.stats_materialize_cap);
  }
  return *catalog_;
}

const stats::CharacteristicSets& EstimationContext::characteristic_sets()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (char_sets_ == nullptr) {
    char_sets_ = std::make_unique<stats::CharacteristicSets>(*g_);
  }
  return *char_sets_;
}

const stats::SummaryGraph& EstimationContext::summary_graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MaterializePendingSummaryLocked();
  if (summary_ == nullptr) {
    summary_ = std::make_unique<stats::SummaryGraph>(
        *g_, options_.summary_buckets);
  }
  return *summary_;
}

void EstimationContext::MaterializePendingSummaryLocked() const {
  if (pending_summary_owner_ == nullptr) return;
  const std::string_view payload = pending_summary_;
  const auto owner = std::move(pending_summary_owner_);  // outlives the parse
  pending_summary_ = {};
  pending_summary_owner_ = nullptr;
  if (summary_ != nullptr) return;
  util::serde::Reader sub(payload);
  auto loaded = stats::SummaryGraph::Load(sub);
  if (!loaded.ok() || !sub.AtEnd() ||
      loaded->num_labels() != g_->num_labels()) {
    return;  // fall back to a fresh build from the graph
  }
  summary_ = std::make_unique<stats::SummaryGraph>(std::move(*loaded));
}

const stats::DispersionCatalog& EstimationContext::dispersion_catalog()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dispersion_ == nullptr) {
    dispersion_ = std::make_unique<stats::DispersionCatalog>(*g_);
  }
  return *dispersion_;
}

std::shared_ptr<learn::FeedbackStore> EstimationContext::feedback_store_ptr()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (feedback_ == nullptr) {
    feedback_ = std::make_shared<learn::FeedbackStore>();
    feedback_->SetStamp(feedback_stamp());
  }
  return feedback_;
}

void EstimationContext::AdoptFeedbackStore(
    std::shared_ptr<learn::FeedbackStore> store) const {
  std::lock_guard<std::mutex> lock(mutex_);
  feedback_ = std::move(store);
}

namespace {

/// The four keyed-cache statistics structures rebuilt over a new graph
/// epoch, shared by the in-place (ApplyDeltas) and offside (ForkWithDeltas)
/// maintenance flows. Sources are read through their thread-safe cache
/// accessors, so the offside flow may run concurrently with estimation.
struct MigratedStats {
  std::map<int, std::unique_ptr<stats::MarkovTable>> markov;
  std::unique_ptr<stats::CycleClosingRates> rates;
  std::unique_ptr<stats::StatsCatalog> catalog;
  std::unique_ptr<stats::DispersionCatalog> dispersion;
};

MigratedStats MigrateKeyedStats(
    const std::vector<std::pair<int, const stats::MarkovTable*>>& markovs,
    const stats::CycleClosingRates* rates, const stats::StatsCatalog* catalog,
    const stats::DispersionCatalog* dispersion, const graph::Graph& new_graph,
    const ContextOptions& options, const dynamic::StatsMaintainer& maintainer,
    dynamic::MaintenanceReport* report) {
  MigratedStats out;
  for (const auto& [h, table] : markovs) {
    auto fresh = std::make_unique<stats::MarkovTable>(new_graph, h);
    maintainer.MigrateMarkov(*table, *fresh, report);
    out.markov.emplace(h, std::move(fresh));
  }
  if (rates != nullptr) {
    out.rates = std::make_unique<stats::CycleClosingRates>(
        new_graph, options.cycle_closing);
    maintainer.MigrateClosingRates(*rates, *out.rates, report);
  }
  if (catalog != nullptr) {
    out.catalog = std::make_unique<stats::StatsCatalog>(
        new_graph, options.stats_materialize_cap);
    maintainer.MigrateCatalog(*catalog, *out.catalog, report);
  }
  if (dispersion != nullptr) {
    out.dispersion = std::make_unique<stats::DispersionCatalog>(new_graph);
    maintainer.MigrateDispersion(*dispersion, *out.dispersion, report);
  }
  return out;
}

}  // namespace

util::StatusOr<dynamic::MaintenanceReport> EstimationContext::ApplyDeltas(
    const std::vector<dynamic::EdgeDelta>& batch) {
  dynamic::MaintenanceReport report;

  dynamic::DeltaGraph overlay(*g_);
  CEGRAPH_RETURN_IF_ERROR(overlay.Apply(batch));
  const dynamic::NetDelta net = overlay.CollectNetDelta();
  report.inserted_edges = net.inserted.size();
  report.deleted_edges = net.deleted.size();

  // Epoch bookkeeping runs only once the batch is fully committed (after
  // any fallible step), so a failed ApplyDeltas leaves the whole dynamic
  // state — graph, statistics, fingerprint, replay log — untouched. An
  // all-no-op batch still commits: it was observed, and snapshots stamped
  // before it must be recognized as earlier points of this log.
  auto commit_epoch = [&] {
    delta_hash_ ^= overlay.delta_hash();
    ++epoch_;
    for (const graph::Edge& e : net.deleted) {
      replay_log_.push_back({e, dynamic::DeltaOp::kDelete});
    }
    for (const graph::Edge& e : net.inserted) {
      replay_log_.push_back({e, dynamic::DeltaOp::kInsert});
    }
    epoch_history_.push_back({delta_hash_, log_trimmed_ + replay_log_.size()});
  };

  if (net.empty()) {
    commit_epoch();
    return report;
  }

  auto compacted = overlay.Compact();
  if (!compacted.ok()) return compacted.status();
  auto new_graph = std::make_shared<const graph::Graph>(
      std::move(*compacted));

  dynamic::StatsMaintainer maintainer(*g_, *new_graph, net);
  report.changed_labels = maintainer.num_changed_labels();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A pending arena summary describes the pre-delta graph: parse it now
    // so the incremental maintenance below starts from the stored state.
    MaterializePendingSummaryLocked();

    // Rebuild each constructed structure over the new graph, carrying the
    // entries the delta did not invalidate. The old graph stays alive for
    // the whole block (owned_ is swapped last), so the migrations can read
    // both epochs.
    std::vector<std::pair<int, const stats::MarkovTable*>> markovs;
    for (const auto& [h, table] : markov_) markovs.emplace_back(h, table.get());
    MigratedStats migrated = MigrateKeyedStats(
        markovs, rates_.get(), catalog_.get(), dispersion_.get(), *new_graph,
        options_, maintainer, &report);
    markov_ = std::move(migrated.markov);
    if (rates_ != nullptr) rates_ = std::move(migrated.rates);
    if (catalog_ != nullptr) catalog_ = std::move(migrated.catalog);
    if (dispersion_ != nullptr) dispersion_ = std::move(migrated.dispersion);
    if (char_sets_ != nullptr) {
      // Any edge delta can regroup vertices by out-label set; the summary
      // is one cheap pass over the graph, so drop it and rebuild lazily.
      char_sets_.reset();
      report.char_sets_dropped = true;
    }
    if (summary_ != nullptr) {
      // Exact incremental SumRDF maintenance: only the delta edges and the
      // re-bucketed endpoints are touched.
      summary_->ApplyDeltas(*g_, *new_graph, net.deleted, net.inserted,
                            &report.summary_moved_vertices);
      report.summary_updated = true;
    }

    owned_ = std::move(new_graph);
    g_ = owned_.get();
  }
  commit_epoch();

  // CEG builds bake Markov cardinalities (and, for OCR, closing rates)
  // into their edge weights; drop exactly the affected ones. OCR entries
  // are all affected whenever rate sampling uses intermediate hops (see
  // dynamic::StatsMaintainer).
  report.ceg_evicted = ceg_cache_.EvictAffected(
      maintainer.changed_labels(), options_.cycle_closing.max_mid_hops > 0);

  return report;
}

util::StatusOr<std::unique_ptr<EstimationContext>>
EstimationContext::ForkWithDeltas(const std::vector<dynamic::EdgeDelta>& batch,
                                  dynamic::MaintenanceReport* report_out)
    const {
  dynamic::MaintenanceReport report;

  dynamic::DeltaGraph overlay(*g_);
  CEGRAPH_RETURN_IF_ERROR(overlay.Apply(batch));
  const dynamic::NetDelta net = overlay.CollectNetDelta();
  report.inserted_edges = net.inserted.size();
  report.deleted_edges = net.deleted.size();

  std::unique_ptr<EstimationContext> fork(new EstimationContext(ForkTag{}));
  fork->options_ = options_;
  fork->base_fingerprint_ = base_fingerprint_;
  fork->delta_hash_ = delta_hash_ ^ overlay.delta_hash();
  fork->epoch_ = epoch_ + 1;
  fork->replay_log_ = replay_log_;
  for (const graph::Edge& e : net.deleted) {
    fork->replay_log_.push_back({e, dynamic::DeltaOp::kDelete});
  }
  for (const graph::Edge& e : net.inserted) {
    fork->replay_log_.push_back({e, dynamic::DeltaOp::kInsert});
  }
  fork->epoch_history_ = epoch_history_;
  fork->history_base_epoch_ = history_base_epoch_;
  fork->log_trimmed_ = log_trimmed_;
  fork->epoch_history_.push_back(
      {fork->delta_hash_, log_trimmed_ + fork->replay_log_.size()});

  if (net.empty()) {
    // Same graph, one epoch later: the fork shares the graph (and, for a
    // borrowed base, the caller's lifetime obligation).
    fork->owned_ = owned_;
    fork->g_ = g_;
  } else {
    auto compacted = overlay.Compact();
    if (!compacted.ok()) return compacted.status();
    fork->owned_ = std::make_shared<const graph::Graph>(std::move(*compacted));
    fork->g_ = fork->owned_.get();
  }

  dynamic::StatsMaintainer maintainer(*g_, *fork->g_, net);
  report.changed_labels = maintainer.num_changed_labels();

  // Source structures are collected once under the context mutex; the
  // migrations then read them through their own cache locks, so concurrent
  // estimation on `this` keeps working throughout the fork. The summaries
  // are value types: copy, then patch the copy (char-sets only when
  // nothing changed — any edge delta can regroup vertices, same rule as
  // ApplyDeltas).
  std::vector<std::pair<int, const stats::MarkovTable*>> markovs;
  const stats::CycleClosingRates* rates = nullptr;
  const stats::StatsCatalog* catalog = nullptr;
  const stats::DispersionCatalog* dispersion = nullptr;
  const stats::CharacteristicSets* char_sets = nullptr;
  const stats::SummaryGraph* summary = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MaterializePendingSummaryLocked();
    for (const auto& [h, table] : markov_) markovs.emplace_back(h, table.get());
    rates = rates_.get();
    catalog = catalog_.get();
    dispersion = dispersion_.get();
    char_sets = char_sets_.get();
    summary = summary_.get();
  }

  MigratedStats migrated = MigrateKeyedStats(
      markovs, rates, catalog, dispersion, *fork->g_, options_, maintainer,
      &report);
  fork->markov_ = std::move(migrated.markov);
  fork->rates_ = std::move(migrated.rates);
  fork->catalog_ = std::move(migrated.catalog);
  fork->dispersion_ = std::move(migrated.dispersion);
  if (char_sets != nullptr) {
    if (net.empty()) {
      fork->char_sets_ = std::make_unique<stats::CharacteristicSets>(*char_sets);
    } else {
      report.char_sets_dropped = true;  // fork rebuilds lazily
    }
  }
  if (summary != nullptr) {
    fork->summary_ = std::make_unique<stats::SummaryGraph>(*summary);
    if (!net.empty()) {
      fork->summary_->ApplyDeltas(*g_, *fork->g_, net.deleted, net.inserted,
                                  &report.summary_moved_vertices);
      report.summary_updated = true;
    }
  }
  fork->ceg_cache_.CarryFrom(ceg_cache_, maintainer.changed_labels(),
                             !net.empty() &&
                                 options_.cycle_closing.max_mid_hops > 0);
  report.ceg_evicted = fork->ceg_cache_.evictions();

  // Learned corrections migrate by *sharing*: the store is keyed to the
  // base fingerprint (unchanged across delta epochs), its truths stay
  // truths of the same dataset, and sharing means a serving chain keeps
  // learning monotonically across hot folds instead of resetting.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fork->feedback_ = feedback_;
  }

  if (report_out != nullptr) *report_out = report;
  return fork;
}

size_t EstimationContext::TrimReplayLog(uint64_t min_epoch) {
  if (min_epoch > epoch_) min_epoch = epoch_;
  if (min_epoch <= history_base_epoch_) return 0;
  const size_t keep_from = MarkAt(min_epoch)->log_size;  // absolute index
  const size_t drop = keep_from - log_trimmed_;
  replay_log_.erase(replay_log_.begin(),
                    replay_log_.begin() + static_cast<ptrdiff_t>(drop));
  epoch_history_.erase(
      epoch_history_.begin(),
      epoch_history_.begin() +
          static_cast<ptrdiff_t>(min_epoch - history_base_epoch_));
  log_trimmed_ = keep_from;
  history_base_epoch_ = min_epoch;
  return drop;
}

std::vector<EstimationContext::CacheStats>
EstimationContext::CollectCacheStats() const {
  std::vector<CacheStats> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [h, table] : markov_) {
      out.push_back({"markov(h=" + std::to_string(h) + ")",
                     table->num_entries(), table->cache_counters()});
    }
    if (rates_ != nullptr) {
      out.push_back(
          {"closing-rates", rates_->num_cached(), rates_->cache_counters()});
    }
    if (catalog_ != nullptr) {
      out.push_back({"degree-base", catalog_->num_base_cached(),
                     catalog_->base_cache_counters()});
      out.push_back({"degree-joins", catalog_->num_joins_cached(),
                     catalog_->join_cache_counters()});
    }
    if (dispersion_ != nullptr) {
      out.push_back({"dispersion", dispersion_->num_cached(),
                     dispersion_->cache_counters()});
    }
  }
  util::CacheCounters ceg;
  ceg.hits = ceg_cache_.hits();
  ceg.misses = ceg_cache_.misses();
  ceg.evictions = ceg_cache_.evictions();
  out.push_back({"ceg-cache", ceg_cache_.size(), ceg});
  return out;
}

}  // namespace cegraph::engine
