#include "engine/estimation_context.h"

#include <utility>

namespace cegraph::engine {

const stats::MarkovTable& EstimationContext::markov(int h) const {
  auto table = TryMarkov(h);
  if (!table.ok()) {
    // A negative Markov size is a programming bug, not a recoverable
    // condition — surface it loudly instead of silently building a
    // degenerate table that would answer every lookup with "not covered".
    util::internal::StatusOrCrash("EstimationContext::markov: " +
                                  table.status().ToString());
  }
  return **table;
}

util::StatusOr<const stats::MarkovTable*> EstimationContext::TryMarkov(
    int h) const {
  if (h < 0) {
    return util::InvalidArgumentError(
        "Markov table size h must be >= 0 (0 = context default), got " +
        std::to_string(h));
  }
  if (h == 0) h = options_.markov_h;
  if (h < 1) {
    return util::InvalidArgumentError(
        "context default markov_h must be >= 1, got " + std::to_string(h));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = markov_.find(h);
  if (it == markov_.end()) {
    it = markov_.emplace(h, std::make_unique<stats::MarkovTable>(*g_, h))
             .first;
  }
  return it->second.get();
}

const stats::CycleClosingRates& EstimationContext::cycle_closing_rates()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rates_ == nullptr) {
    rates_ = std::make_unique<stats::CycleClosingRates>(
        *g_, options_.cycle_closing);
  }
  return *rates_;
}

const stats::StatsCatalog& EstimationContext::stats_catalog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (catalog_ == nullptr) {
    catalog_ = std::make_unique<stats::StatsCatalog>(
        *g_, options_.stats_materialize_cap);
  }
  return *catalog_;
}

const stats::CharacteristicSets& EstimationContext::characteristic_sets()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (char_sets_ == nullptr) {
    char_sets_ = std::make_unique<stats::CharacteristicSets>(*g_);
  }
  return *char_sets_;
}

const stats::SummaryGraph& EstimationContext::summary_graph() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (summary_ == nullptr) {
    summary_ = std::make_unique<stats::SummaryGraph>(
        *g_, options_.summary_buckets);
  }
  return *summary_;
}

const stats::DispersionCatalog& EstimationContext::dispersion_catalog()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dispersion_ == nullptr) {
    dispersion_ = std::make_unique<stats::DispersionCatalog>(*g_);
  }
  return *dispersion_;
}

util::StatusOr<dynamic::MaintenanceReport> EstimationContext::ApplyDeltas(
    const std::vector<dynamic::EdgeDelta>& batch) {
  dynamic::MaintenanceReport report;

  dynamic::DeltaGraph overlay(*g_);
  CEGRAPH_RETURN_IF_ERROR(overlay.Apply(batch));
  const dynamic::NetDelta net = overlay.CollectNetDelta();
  report.inserted_edges = net.inserted.size();
  report.deleted_edges = net.deleted.size();

  // Epoch bookkeeping runs only once the batch is fully committed (after
  // any fallible step), so a failed ApplyDeltas leaves the whole dynamic
  // state — graph, statistics, fingerprint, replay log — untouched. An
  // all-no-op batch still commits: it was observed, and snapshots stamped
  // before it must be recognized as earlier points of this log.
  auto commit_epoch = [&] {
    delta_hash_ ^= overlay.delta_hash();
    ++epoch_;
    for (const graph::Edge& e : net.deleted) {
      replay_log_.push_back({e, dynamic::DeltaOp::kDelete});
    }
    for (const graph::Edge& e : net.inserted) {
      replay_log_.push_back({e, dynamic::DeltaOp::kInsert});
    }
    epoch_history_.push_back({delta_hash_, replay_log_.size()});
  };

  if (net.empty()) {
    commit_epoch();
    return report;
  }

  auto compacted = overlay.Compact();
  if (!compacted.ok()) return compacted.status();
  auto new_graph = std::make_shared<const graph::Graph>(
      std::move(*compacted));

  dynamic::StatsMaintainer maintainer(*g_, *new_graph, net);
  report.changed_labels = maintainer.num_changed_labels();

  {
    std::lock_guard<std::mutex> lock(mutex_);

    // Rebuild each constructed structure over the new graph, carrying the
    // entries the delta did not invalidate. The old graph stays alive for
    // the whole block (owned_ is swapped last), so the migrations can read
    // both epochs.
    std::map<int, std::unique_ptr<stats::MarkovTable>> new_markov;
    for (const auto& [h, table] : markov_) {
      auto fresh = std::make_unique<stats::MarkovTable>(*new_graph, h);
      maintainer.MigrateMarkov(*table, *fresh, &report);
      new_markov.emplace(h, std::move(fresh));
    }
    markov_ = std::move(new_markov);

    if (rates_ != nullptr) {
      auto fresh = std::make_unique<stats::CycleClosingRates>(
          *new_graph, options_.cycle_closing);
      maintainer.MigrateClosingRates(*rates_, *fresh, &report);
      rates_ = std::move(fresh);
    }
    if (catalog_ != nullptr) {
      auto fresh = std::make_unique<stats::StatsCatalog>(
          *new_graph, options_.stats_materialize_cap);
      maintainer.MigrateCatalog(*catalog_, *fresh, &report);
      catalog_ = std::move(fresh);
    }
    if (dispersion_ != nullptr) {
      auto fresh = std::make_unique<stats::DispersionCatalog>(*new_graph);
      maintainer.MigrateDispersion(*dispersion_, *fresh, &report);
      dispersion_ = std::move(fresh);
    }
    if (char_sets_ != nullptr) {
      // Any edge delta can regroup vertices by out-label set; the summary
      // is one cheap pass over the graph, so drop it and rebuild lazily.
      char_sets_.reset();
      report.char_sets_dropped = true;
    }
    if (summary_ != nullptr) {
      // Exact incremental SumRDF maintenance: only the delta edges and the
      // re-bucketed endpoints are touched.
      summary_->ApplyDeltas(*g_, *new_graph, net.deleted, net.inserted,
                            &report.summary_moved_vertices);
      report.summary_updated = true;
    }

    owned_ = std::move(new_graph);
    g_ = owned_.get();
  }
  commit_epoch();

  // CEG builds bake Markov cardinalities (and, for OCR, closing rates)
  // into their edge weights; drop exactly the affected ones. OCR entries
  // are all affected whenever rate sampling uses intermediate hops (see
  // dynamic::StatsMaintainer).
  report.ceg_evicted = ceg_cache_.EvictAffected(
      maintainer.changed_labels(), options_.cycle_closing.max_mid_hops > 0);

  return report;
}

std::vector<EstimationContext::CacheStats>
EstimationContext::CollectCacheStats() const {
  std::vector<CacheStats> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [h, table] : markov_) {
      out.push_back({"markov(h=" + std::to_string(h) + ")",
                     table->num_entries(), table->cache_counters()});
    }
    if (rates_ != nullptr) {
      out.push_back(
          {"closing-rates", rates_->num_cached(), rates_->cache_counters()});
    }
    if (catalog_ != nullptr) {
      out.push_back({"degree-base", catalog_->num_base_cached(),
                     catalog_->base_cache_counters()});
      out.push_back({"degree-joins", catalog_->num_joins_cached(),
                     catalog_->join_cache_counters()});
    }
    if (dispersion_ != nullptr) {
      out.push_back({"dispersion", dispersion_->num_cached(),
                     dispersion_->cache_counters()});
    }
  }
  util::CacheCounters ceg;
  ceg.hits = ceg_cache_.hits();
  ceg.misses = ceg_cache_.misses();
  ceg.evictions = ceg_cache_.evictions();
  out.push_back({"ceg-cache", ceg_cache_.size(), ceg});
  return out;
}

}  // namespace cegraph::engine
