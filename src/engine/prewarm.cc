// EstimationContext::Prewarm lives in its own TU because it drives the
// harness-layer WorkloadRunner (harness already depends on engine headers,
// so keeping the include out of estimation_context.cc avoids any appearance
// of a layering cycle: the dependency exists only at link time, within the
// one cegraph library).
#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <unordered_set>
#include <vector>

#include "ceg/ceg_ocr.h"
#include "engine/estimation_context.h"
#include "harness/workload_runner.h"
#include "query/subquery.h"

namespace cegraph::engine {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PrewarmReport EstimationContext::Prewarm(
    const std::vector<query::WorkloadQuery>& workload,
    const PrewarmOptions& options) const {
  PrewarmReport report;
  const double t0 = Now();
  const int h = options_.markov_h;

  // Enumerate the full (deduplicated) task universe first, then fill it in
  // parallel: work items are independent cache fills, so a flat list +
  // work-stealing ForEachIndex load-balances regardless of how skewed the
  // per-pattern matching costs are.
  std::vector<query::QueryGraph> markov_patterns;
  std::vector<query::QueryGraph> two_join_patterns;
  std::vector<std::pair<query::QueryGraph, query::EdgeSet>> dispersion_pairs;
  std::vector<graph::Label> labels;
  std::vector<stats::ClosingKey> closing_keys;

  std::unordered_set<std::string> seen_markov;
  std::unordered_set<std::string> seen_two_join;
  std::unordered_set<std::string> seen_dispersion;
  std::unordered_set<graph::Label> seen_labels;
  std::unordered_set<stats::ClosingKey, stats::ClosingKeyHash> seen_keys;

  // Two-join statistics cover 2-edge sub-queries regardless of the Markov
  // size, so the subset enumeration must reach 2 even at h = 1.
  const int enum_h = options.two_joins ? std::max(h, 2) : h;

  // Dispersion pairs must be deduplicated by the exact cache key
  // DispersionCatalog::Get uses — the canonical code of the pattern with
  // intersection edges marked by a label offset — or isomorphic patterns
  // with different edge orders would alias distinct (E, I) classes.
  const graph::Label mark_offset = g_->num_labels();
  auto dispersion_key = [&](const query::QueryGraph& pattern,
                            query::EdgeSet intersection) -> std::string {
    std::vector<query::QueryEdge> marked = pattern.edges();
    for (uint32_t i = 0; i < marked.size(); ++i) {
      if (intersection & (query::EdgeSet{1} << i)) {
        marked[i].label += mark_offset;
      }
    }
    auto marked_q =
        query::QueryGraph::Create(pattern.num_vertices(), std::move(marked));
    return marked_q.ok() ? marked_q->CanonicalCode() : std::string();
  };

  for (const query::WorkloadQuery& wq : workload) {
    const query::QueryGraph& q = wq.query;
    for (query::EdgeSet s : query::ConnectedSubsets(q, enum_h)) {
      query::QueryGraph pattern = q.ExtractPattern(s);
      const std::string code = pattern.CanonicalCode();
      if (options.two_joins && std::popcount(s) == 2 &&
          seen_two_join.insert(code).second) {
        two_join_patterns.push_back(pattern);
      }
      if (options.dispersion && static_cast<int>(pattern.num_edges()) <= h &&
          pattern.num_edges() <= 3) {
        // Every (extension, intersection) pair a dispersion-guided path
        // walk over this pattern can request. AllEdges is a contiguous
        // low-bit mask, so every i < all is a proper subset.
        const query::EdgeSet all = pattern.AllEdges();
        for (query::EdgeSet i = 0; i < all; ++i) {
          const std::string pair_code = dispersion_key(pattern, i);
          if (!pair_code.empty() &&
              seen_dispersion.insert(pair_code).second) {
            dispersion_pairs.emplace_back(pattern, i);
          }
        }
      }
      if (options.markov && static_cast<int>(pattern.num_edges()) <= h &&
          seen_markov.insert(code).second) {
        markov_patterns.push_back(std::move(pattern));
      }
    }
    if (options.degree) {
      for (const query::QueryEdge& e : q.edges()) {
        if (seen_labels.insert(e.label).second) labels.push_back(e.label);
      }
    }
    if (options.closing_rates) {
      for (const stats::ClosingKey& key : ceg::EnumerateClosingKeys(q, h)) {
        if (seen_keys.insert(key).second) closing_keys.push_back(key);
      }
    }
  }

  report.markov_patterns = markov_patterns.size();
  report.two_join_patterns = two_join_patterns.size();
  report.dispersion_pairs = dispersion_pairs.size();
  report.base_relations = labels.size();
  report.closing_keys = closing_keys.size();

  // Resolve the shared structures once, before spawning workers (the lazy
  // accessors themselves are thread-safe, but constructing eagerly keeps
  // worker tasks free of the context mutex).
  const stats::MarkovTable* markov_table =
      options.markov ? &markov() : nullptr;
  const stats::StatsCatalog* catalog =
      (options.degree || options.two_joins) ? &stats_catalog() : nullptr;
  const stats::CycleClosingRates* rates =
      options.closing_rates ? &cycle_closing_rates() : nullptr;
  const stats::DispersionCatalog* dispersion =
      options.dispersion ? &dispersion_catalog() : nullptr;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(markov_patterns.size() + two_join_patterns.size() +
                dispersion_pairs.size() + labels.size() +
                closing_keys.size());
  for (const query::QueryGraph& pattern : markov_patterns) {
    tasks.emplace_back(
        [markov_table, &pattern] { (void)markov_table->Cardinality(pattern); });
  }
  for (const query::QueryGraph& pattern : two_join_patterns) {
    tasks.emplace_back([catalog, &pattern] { (void)catalog->TwoJoin(pattern); });
  }
  for (const auto& [pattern, intersection] : dispersion_pairs) {
    const query::QueryGraph* p = &pattern;
    const query::EdgeSet i = intersection;
    tasks.emplace_back([dispersion, p, i] { (void)dispersion->Get(*p, i); });
  }
  for (graph::Label l : labels) {
    tasks.emplace_back([catalog, l] { (void)catalog->BaseRelation(l); });
  }
  for (const stats::ClosingKey& key : closing_keys) {
    tasks.emplace_back([rates, &key] { (void)rates->Rate(key); });
  }

  harness::RunnerOptions runner_options;
  runner_options.num_threads = options.num_threads;
  harness::WorkloadRunner(runner_options)
      .ForEachIndex(tasks.size(), [&](size_t i) { tasks[i](); });

  if (options.summaries) {
    // Eager whole-graph summaries; built serially (each is one pass over
    // the graph and they are only two).
    (void)characteristic_sets();
    (void)summary_graph();
  }

  report.seconds = Now() - t0;
  return report;
}

}  // namespace cegraph::engine
