#include "engine/estimator_registry.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "estimators/bound_sketch.h"
#include "estimators/characteristic_sets.h"
#include "estimators/default_rdf3x.h"
#include "estimators/dispersion_path.h"
#include "estimators/max_entropy.h"
#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "estimators/sumrdf.h"
#include "estimators/wander_join.h"

namespace cegraph::engine {

namespace {

/// An optimistic estimator whose per-query CEG build goes through the
/// context's CegCache: nine specs over the same (query, CEG kind) pay for
/// one BuildCegO/BuildCegOcr + ComputeAggregates between them, instead of
/// nine. Semantically identical to OptimisticEstimator::Estimate.
class CachedOptimisticEstimator : public CardinalityEstimator {
 public:
  // The shared structures are resolved once here (the context outlives
  // the estimator by contract), so Estimate never touches the context
  // mutex on the hot path.
  CachedOptimisticEstimator(const EstimationContext& context,
                            OptimisticSpec spec)
      : graph_(context.graph()),
        markov_(context.markov()),
        rates_(spec.ceg_kind == OptimisticCeg::kCegOcr
                   ? &context.cycle_closing_rates()
                   : nullptr),
        cache_(context.ceg_cache()),
        spec_(spec) {
    spec_.ceg_options = context.options().ceg_options;
  }

  std::string name() const override { return SpecName(spec_); }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override {
    if (q.num_edges() == 0 || !q.IsConnected()) {
      return util::InvalidArgumentError(
          "query must be non-empty and connected");
    }
    if (AnyEmptyRelation(graph_, q)) return 0.0;
    auto entry =
        cache_.GetOrBuild(q, markov_, spec_.ceg_kind, rates_,
                          spec_.ceg_options);
    if (!entry.ok()) return entry.status();
    if (!(*entry)->aggregates_ok) return (*entry)->aggregates_status;
    return OptimisticEstimator::EstimateFromAggregates((*entry)->aggregates,
                                                       spec_);
  }

 private:
  const graph::Graph& graph_;
  const stats::MarkovTable& markov_;
  const stats::CycleClosingRates* rates_;
  CegCache& cache_;
  OptimisticSpec spec_;
};

bool ParseWanderJoinName(const std::string& name, double* ratio) {
  // "wj-<pct>%", e.g. "wj-0.25%".
  if (name.size() < 5 || name.compare(0, 3, "wj-") != 0 ||
      name.back() != '%') {
    return false;
  }
  char* end = nullptr;
  const std::string pct = name.substr(3, name.size() - 4);
  const double value = std::strtod(pct.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value) ||
      value <= 0 || value > 100) {
    return false;
  }
  *ratio = value / 100.0;
  return true;
}

bool ParseBoundSketchName(const std::string& name, int* budget,
                          BoundSketchEstimator::Inner* inner) {
  // "bs<K>(max-hop-max)" or "bs<K>(molp)".
  if (name.size() < 5 || name.compare(0, 2, "bs") != 0 ||
      name.back() != ')') {
    return false;
  }
  const size_t open = name.find('(');
  if (open == std::string::npos || open <= 2) return false;
  char* end = nullptr;
  const std::string k = name.substr(2, open - 2);
  const long value = std::strtol(k.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 1 || value > 4096) {
    return false;
  }
  const std::string inner_name = name.substr(open + 1, name.size() - open - 2);
  if (inner_name == "max-hop-max") {
    *inner = BoundSketchEstimator::Inner::kOptimisticMaxHopMax;
  } else if (inner_name == "molp") {
    *inner = BoundSketchEstimator::Inner::kMolp;
  } else {
    return false;
  }
  *budget = static_cast<int>(value);
  return true;
}

EstimatorRegistry BuildDefaultRegistry() {
  EstimatorRegistry registry;

  // The 9 optimistic estimators on CEG_O and CEG_OCR, CEG-cache backed.
  for (OptimisticCeg kind : {OptimisticCeg::kCegO, OptimisticCeg::kCegOcr}) {
    for (const OptimisticSpec& spec : AllOptimisticSpecs(kind)) {
      registry.Register(
          SpecName(spec),
          [spec](const EstimationContext& context)
              -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
            return EstimatorRegistry::EstimatorPtr(
                new CachedOptimisticEstimator(context, spec));
          });
    }
  }

  // Pessimistic bounds.
  registry.Register(
      "molp",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(new MolpEstimator(
            context.stats_catalog(), /*include_two_joins=*/false));
      });
  registry.Register(
      "molp+2j",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(new MolpEstimator(
            context.stats_catalog(), /*include_two_joins=*/true));
      });
  registry.Register(
      "cbs",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(
            new CbsEstimator(context.stats_catalog()));
      });

  // Baselines.
  registry.Register(
      "cs",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(
            new CharacteristicSetsEstimator(context.characteristic_sets()));
      });
  registry.Register(
      "sumrdf",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(new SumRdfEstimator(
            context.summary_graph(), context.options().sumrdf_step_budget));
      });
  registry.Register(
      "rdf3x-default",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(
            new DefaultRdf3xEstimator(context.graph()));
      });

  // §7/§8 future-work estimators over the same Markov statistics.
  registry.Register(
      "min-cv-path",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(new DispersionGuidedEstimator(
            context.markov(), context.dispersion_catalog(),
            DispersionGuidedEstimator::Objective::kMinCv));
      });
  registry.Register(
      "min-entropy-path",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(new DispersionGuidedEstimator(
            context.markov(), context.dispersion_catalog(),
            DispersionGuidedEstimator::Objective::kMinEntropy));
      });
  registry.Register(
      "max-entropy",
      [](const EstimationContext& context)
          -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
        return EstimatorRegistry::EstimatorPtr(
            new MaxEntropyEstimator(context.markov()));
      });

  // WanderJoin family (and its default ratio as an exact name).
  auto make_wj = [](const std::string& name, const EstimationContext& context)
      -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
    double ratio = 0;
    if (!ParseWanderJoinName(name, &ratio)) {
      return util::InvalidArgumentError("bad WanderJoin name: " + name);
    }
    WanderJoinOptions options;
    options.sampling_ratio = ratio;
    return EstimatorRegistry::EstimatorPtr(
        new WanderJoinEstimator(context.graph(), options));
  };
  registry.Register("wj-0.25%",
                    [make_wj](const EstimationContext& context) {
                      return make_wj("wj-0.25%", context);
                    });
  registry.RegisterPattern(
      "wj-<pct>%",
      [](const std::string& name) {
        double ratio = 0;
        return ParseWanderJoinName(name, &ratio);
      },
      make_wj);

  // Bound-sketch family (defaults as exact names).
  auto make_bs = [](const std::string& name, const EstimationContext& context)
      -> util::StatusOr<EstimatorRegistry::EstimatorPtr> {
    int budget = 0;
    BoundSketchEstimator::Inner inner;
    if (!ParseBoundSketchName(name, &budget, &inner)) {
      return util::InvalidArgumentError("bad bound-sketch name: " + name);
    }
    BoundSketchEstimator::Options options;
    options.budget_k = budget;
    options.markov_h = context.options().markov_h;
    return EstimatorRegistry::EstimatorPtr(
        new BoundSketchEstimator(context.graph(), inner, options));
  };
  for (const char* name : {"bs4(max-hop-max)", "bs4(molp)"}) {
    registry.Register(name, [make_bs, name](const EstimationContext& context) {
      return make_bs(name, context);
    });
  }
  registry.RegisterPattern(
      "bs<K>(max-hop-max|molp)",
      [](const std::string& name) {
        int budget = 0;
        BoundSketchEstimator::Inner inner;
        return ParseBoundSketchName(name, &budget, &inner);
      },
      make_bs);

  return registry;
}

}  // namespace

const EstimatorRegistry& EstimatorRegistry::Default() {
  static const EstimatorRegistry* registry =
      new EstimatorRegistry(BuildDefaultRegistry());
  return *registry;
}

void EstimatorRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

void EstimatorRegistry::RegisterPattern(
    std::string description, std::function<bool(const std::string&)> probe,
    PatternFactory factory) {
  patterns_.push_back(
      {std::move(description), std::move(probe), std::move(factory)});
}

bool EstimatorRegistry::Contains(const std::string& name) const {
  if (factories_.count(name) > 0) return true;
  for (const Pattern& pattern : patterns_) {
    if (pattern.probe(name)) return true;
  }
  return false;
}

util::StatusOr<EstimatorRegistry::EstimatorPtr> EstimatorRegistry::Create(
    const std::string& name, const EstimationContext& context) const {
  auto it = factories_.find(name);
  if (it != factories_.end()) return it->second(context);
  for (const Pattern& pattern : patterns_) {
    if (pattern.probe(name)) return pattern.factory(name, context);
  }
  return util::NotFoundError("no estimator registered under \"" + name +
                             "\"");
}

std::vector<std::string> EstimatorRegistry::RegisteredNames() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

std::vector<std::string> EstimatorRegistry::pattern_descriptions() const {
  std::vector<std::string> out;
  out.reserve(patterns_.size());
  for (const Pattern& pattern : patterns_) out.push_back(pattern.description);
  return out;
}

}  // namespace cegraph::engine
