#ifndef CEGRAPH_ENGINE_ENGINE_H_
#define CEGRAPH_ENGINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/estimation_context.h"
#include "engine/estimator_registry.h"

namespace cegraph::engine {

/// The one-stop estimation layer over a graph: an EstimationContext (shared
/// statistics + CEG cache) plus registry-driven, memoized estimator
/// construction. A bench that used to hand-assemble MarkovTable +
/// OptimisticEstimator + StatsCatalog + ... now writes
///
///   engine::EstimationEngine engine(graph);
///   auto suite = engine.Estimators({"max-hop-max", "molp", "cs"});
///   harness::RunEstimatorSuite(*suite, workload);
///
/// Estimator instances are created once per name and shared; the engine
/// must outlive every pointer it hands out.
class EstimationEngine {
 public:
  explicit EstimationEngine(const graph::Graph& g, ContextOptions options = {},
                            const EstimatorRegistry* registry = nullptr)
      : context_(std::make_unique<EstimationContext>(g, options)),
        registry_(registry != nullptr ? registry
                                      : &EstimatorRegistry::Default()) {}

  /// Shares ownership of `g` (serving states keep one base graph alive
  /// across a chain of engines).
  explicit EstimationEngine(std::shared_ptr<const graph::Graph> g,
                            ContextOptions options = {},
                            const EstimatorRegistry* registry = nullptr)
      : context_(std::make_unique<EstimationContext>(std::move(g), options)),
        registry_(registry != nullptr ? registry
                                      : &EstimatorRegistry::Default()) {}

  /// Adopts an existing context — the way a serving state wraps the result
  /// of EstimationContext::ForkWithDeltas into a fresh engine whose
  /// estimator instances are built against the forked statistics.
  explicit EstimationEngine(std::unique_ptr<EstimationContext> context,
                            const EstimatorRegistry* registry = nullptr)
      : context_(std::move(context)),
        registry_(registry != nullptr ? registry
                                      : &EstimatorRegistry::Default()) {}

  const EstimationContext& context() const { return *context_; }
  const EstimatorRegistry& registry() const { return *registry_; }
  CegCache& ceg_cache() const { return context_->ceg_cache(); }

  /// The estimator registered under `name`, constructed on first use and
  /// shared thereafter. Thread-safe.
  util::StatusOr<const CardinalityEstimator*> Estimator(
      const std::string& name) const;

  /// Resolves several names at once, in order, for RunEstimatorSuite-style
  /// consumption. Fails on the first unknown name.
  util::StatusOr<std::vector<const CardinalityEstimator*>> Estimators(
      const std::vector<std::string>& names) const;

  /// Applies an edge-delta batch to the shared context (incremental
  /// statistics maintenance, see EstimationContext::ApplyDeltas) and drops
  /// every memoized estimator instance — they hold references to the
  /// replaced statistics structures. Pointers previously returned by
  /// Estimator()/Estimators() are invalidated; re-resolve them. Must run
  /// quiesced (no in-flight estimation).
  util::StatusOr<dynamic::MaintenanceReport> ApplyDeltas(
      const std::vector<dynamic::EdgeDelta>& batch);

 private:
  std::unique_ptr<EstimationContext> context_;
  const EstimatorRegistry* registry_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string,
                             std::unique_ptr<CardinalityEstimator>>
      instances_;
};

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_ENGINE_H_
