#include "engine/ceg_cache.h"

#include <algorithm>
#include <utility>

#include "ceg/ceg_ocr.h"

namespace cegraph::engine {

namespace {

std::string CacheKey(const query::QueryGraph& q, int h, OptimisticCeg kind,
                     const ceg::CegOOptions& options) {
  std::string key = q.CanonicalCode();
  key += '|';
  key += kind == OptimisticCeg::kCegOcr ? 'R' : 'O';
  key += static_cast<char>('0' + h);
  key += options.size_h_numerators ? '1' : '0';
  key += options.early_cycle_closing ? '1' : '0';
  return key;
}

}  // namespace

util::StatusOr<std::shared_ptr<const CachedCeg>> CegCache::GetOrBuild(
    const query::QueryGraph& q, const stats::MarkovTable& markov,
    OptimisticCeg kind, const stats::CycleClosingRates* rates,
    const ceg::CegOOptions& options) {
  const std::string key = CacheKey(q, markov.h(), kind, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.ceg;
    }
  }

  // Build outside the lock; two threads racing on the same cold class
  // build identical entries and the second insert is dropped.
  util::StatusOr<ceg::BuiltCegO> built =
      kind == OptimisticCeg::kCegOcr
          ? (rates == nullptr
                 ? util::StatusOr<ceg::BuiltCegO>(util::InvalidArgumentError(
                       "CEG_OCR requires cycle-closing rates"))
                 : ceg::BuildCegOcr(q, markov, *rates, options))
          : ceg::BuildCegO(q, markov, options);
  if (!built.ok()) return built.status();

  auto entry = std::make_shared<CachedCeg>();
  entry->built = std::move(built).value();
  entry->built.ceg.Finalize();  // traversals are pure reads from here on
  auto aggregates = entry->built.ceg.ComputeAggregates();
  if (aggregates.ok()) {
    entry->aggregates_ok = true;
    entry->aggregates = std::move(aggregates).value();
  } else {
    entry->aggregates_status = aggregates.status();
  }

  // The invalidation index: distinct labels of the query, sorted.
  Entry cache_entry;
  cache_entry.ceg = std::move(entry);
  cache_entry.labels.reserve(q.num_edges());
  for (const query::QueryEdge& e : q.edges()) {
    cache_entry.labels.push_back(e.label);
  }
  std::sort(cache_entry.labels.begin(), cache_entry.labels.end());
  cache_entry.labels.erase(
      std::unique(cache_entry.labels.begin(), cache_entry.labels.end()),
      cache_entry.labels.end());
  cache_entry.ocr = kind == OptimisticCeg::kCegOcr;

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(key, std::move(cache_entry));
  // Count under the lock so misses() is exactly the number of distinct
  // entries ever inserted, independent of thread interleavings; a racer
  // whose redundant build lost the insert counts as a hit.
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second.ceg;
}

size_t CegCache::EvictAffected(const std::vector<bool>& changed_labels,
                               bool evict_all_ocr) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    bool affected = evict_all_ocr && entry.ocr;
    if (!affected) {
      for (graph::Label l : entry.labels) {
        if (l < changed_labels.size() && changed_labels[l]) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  evictions_.fetch_add(erased, std::memory_order_relaxed);
  return erased;
}

size_t CegCache::CarryFrom(const CegCache& src,
                           const std::vector<bool>& changed_labels,
                           bool evict_all_ocr) {
  // Two distinct caches: the source belongs to the serving state being
  // forked, this one to the fork under construction (not yet published),
  // so this pair-lock cannot deadlock against another CarryFrom.
  std::scoped_lock lock(src.mutex_, mutex_);
  size_t carried = 0;
  size_t skipped = 0;
  for (const auto& [key, entry] : src.entries_) {
    bool affected = evict_all_ocr && entry.ocr;
    if (!affected) {
      for (graph::Label l : entry.labels) {
        if (l < changed_labels.size() && changed_labels[l]) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      ++skipped;
      continue;
    }
    entries_.emplace(key, entry);
    ++carried;
  }
  evictions_.fetch_add(skipped, std::memory_order_relaxed);
  return carried;
}

size_t CegCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CegCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace cegraph::engine
