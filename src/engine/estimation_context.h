#ifndef CEGRAPH_ENGINE_ESTIMATION_CONTEXT_H_
#define CEGRAPH_ENGINE_ESTIMATION_CONTEXT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dynamic/delta_graph.h"
#include "dynamic/stats_maintainer.h"
#include "engine/ceg_cache.h"
#include "engine/snapshot.h"
#include "graph/graph.h"
#include "learn/feedback_store.h"
#include "query/workload.h"
#include "stats/char_sets.h"
#include "stats/cycle_closing.h"
#include "stats/degree_stats.h"
#include "stats/dispersion.h"
#include "stats/markov_table.h"
#include "stats/summary_graph.h"
#include "util/status.h"

namespace cegraph::util {
class MappedArena;
}

namespace cegraph::engine {

/// Construction knobs for the shared statistic structures. Defaults follow
/// the paper's experimental setup (§6.1): h = 2 Markov tables, 64-bucket
/// SumRDF summaries.
struct ContextOptions {
  /// Markov table size used by estimators that don't name one explicitly.
  int markov_h = 2;
  /// CEG construction rules shared by every optimistic estimator.
  ceg::CegOOptions ceg_options;
  /// Cycle-closing-rate sampling (CEG_OCR).
  stats::CycleClosingOptions cycle_closing;
  /// SumRDF summary buckets.
  uint32_t summary_buckets = 64;
  /// SumRDF matching step budget (its "timeout").
  uint64_t sumrdf_step_budget = 50'000'000;
  /// Cap for materializing 2-join degree statistics (MOLP+2j).
  uint64_t stats_materialize_cap = 4'000'000;
};

/// What Prewarm should fill and how hard it may work. Every toggle maps to
/// one statistics substrate; all of them default on except dispersion
/// (whose exact extension analysis is by far the most expensive and only
/// feeds the §8 future-work estimators).
struct PrewarmOptions {
  /// Worker threads (0 = all cores, 1 = serial), applied through a
  /// harness::WorkloadRunner.
  int num_threads = 0;
  bool markov = true;          ///< sub-pattern cardinalities (h-sized)
  bool closing_rates = true;   ///< CEG_OCR cycle-closing statistics
  bool degree = true;          ///< base-relation degree maps
  bool two_joins = true;       ///< materialized 2-join degree statistics
  bool dispersion = false;     ///< extension-dispersion statistics (§8)
  bool summaries = true;       ///< CS + SumRDF eager summaries
};

/// What one Prewarm pass enumerated and filled (deduplicated task counts,
/// not per-query touches).
struct PrewarmReport {
  size_t markov_patterns = 0;
  size_t closing_keys = 0;
  size_t base_relations = 0;
  size_t two_join_patterns = 0;
  size_t dispersion_pairs = 0;
  double seconds = 0;
};

/// The shared substrate of every estimator over one graph: the graph
/// itself, lazily built summary/statistic structures (Markov tables per h,
/// cycle-closing rates, degree-statistics catalog, characteristic sets,
/// SumRDF summary) and the CEG build cache. Estimators constructed through
/// the EstimatorRegistry borrow these instead of each bench/example
/// re-instantiating its own copies.
///
/// Every accessor is thread-safe; the returned structures are themselves
/// safe for concurrent use (their memo caches are mutex-guarded), so one
/// context serves a parallel WorkloadRunner. The context must outlive every
/// estimator created from it.
///
/// The statistics substrate is a durable artifact: Prewarm fills the lazy
/// caches for a workload ahead of time, SaveSnapshot persists everything
/// built so far to a versioned binary file, and LoadSnapshot restores it in
/// milliseconds on a later process start (guarded by the graph fingerprint,
/// so stats never load against the wrong dataset). See engine/snapshot.h
/// for the file format.
///
/// The context is also *update-aware*: ApplyDeltas folds a batch of edge
/// inserts/deletes into the graph (via a dynamic::DeltaGraph compaction)
/// and maintains the statistics incrementally — exact in-place updates
/// where cheap, targeted per-key eviction elsewhere (see
/// dynamic::StatsMaintainer) — instead of rebuilding from scratch. The
/// context's identity then becomes a dynamic fingerprint triple
/// (base fingerprint, delta-log hash, epoch); snapshots taken at an earlier
/// epoch of the same log remain loadable (stale-but-replayable), snapshots
/// of unrelated graphs are rejected. ApplyDeltas must run quiesced: no
/// concurrent estimation, and estimator instances created before the call
/// hold dangling statistics references afterwards (EstimationEngine
/// re-creates its instances; direct users must do the same).
class EstimationContext {
 public:
  /// Borrows `g`, which must outlive the context. After ApplyDeltas the
  /// context serves a new compacted graph it owns; the borrowed base is
  /// never modified.
  explicit EstimationContext(const graph::Graph& g, ContextOptions options = {})
      : g_(&g), options_(options), base_fingerprint_(g.fingerprint()) {
    epoch_history_.push_back({0, 0});
  }
  /// Takes ownership of `g`.
  explicit EstimationContext(graph::Graph&& g, ContextOptions options = {})
      : owned_(std::make_shared<const graph::Graph>(std::move(g))),
        g_(owned_.get()),
        options_(options),
        base_fingerprint_(g_->fingerprint()) {
    epoch_history_.push_back({0, 0});
  }
  /// Shares ownership of `g` — the constructor for serving states, where
  /// the same base graph backs a chain of contexts (the service keeps it
  /// alive across snapshot hot-swaps).
  explicit EstimationContext(std::shared_ptr<const graph::Graph> g,
                             ContextOptions options = {})
      : owned_(std::move(g)),
        g_(owned_.get()),
        options_(options),
        base_fingerprint_(g_->fingerprint()) {
    epoch_history_.push_back({0, 0});
  }

  EstimationContext(const EstimationContext&) = delete;
  EstimationContext& operator=(const EstimationContext&) = delete;

  /// The current graph: the construction-time graph until the first
  /// ApplyDeltas, the owned compacted graph afterwards.
  const graph::Graph& graph() const { return *g_; }
  const ContextOptions& options() const { return options_; }

  /// The size-`h` Markov table (h = 0 means options().markov_h). Built on
  /// first use, then shared. `h` must be >= 0: a negative size is a
  /// programming bug and crashes with a clear message (use TryMarkov for a
  /// recoverable Status instead).
  const stats::MarkovTable& markov(int h = 0) const;

  /// Status-returning variant of markov(): InvalidArgument for h < 0 (or a
  /// non-positive options().markov_h when h == 0) instead of crashing. The
  /// pointer is never null on the OK path and lives as long as the context.
  util::StatusOr<const stats::MarkovTable*> TryMarkov(int h = 0) const;

  /// Cycle-closing rates for CEG_OCR.
  const stats::CycleClosingRates& cycle_closing_rates() const;

  /// Degree-statistics catalog for MOLP / CBS.
  const stats::StatsCatalog& stats_catalog() const;

  /// Characteristic Sets summary.
  const stats::CharacteristicSets& characteristic_sets() const;

  /// SumRDF summary graph.
  const stats::SummaryGraph& summary_graph() const;

  /// Extension-dispersion catalog (§8 future-work estimators).
  const stats::DispersionCatalog& dispersion_catalog() const;

  /// The shared CEG build cache.
  CegCache& ceg_cache() const { return ceg_cache_; }

  /// The learned-feedback store (per-class multiplicative q-error
  /// corrections; see learn/feedback_store.h). Created lazily on first
  /// use, stamped with a digest of the *base* graph fingerprint so
  /// snapshot loads can discard corrections learned against a different
  /// graph. ForkWithDeltas shares the pointer across epochs — delta
  /// batches never invalidate corrections, because the base graph (and
  /// hence the stamp) is unchanged; only a different dataset does.
  learn::FeedbackStore& feedback_store() const {
    return *feedback_store_ptr();
  }
  std::shared_ptr<learn::FeedbackStore> feedback_store_ptr() const;

  /// Replaces this context's feedback store wholesale. The serving layer
  /// uses this to (a) seed a fresh context with its configured learner
  /// knobs before a snapshot load and (b) carry the live store across a
  /// hot-swap, so learning survives state replacement.
  void AdoptFeedbackStore(std::shared_ptr<learn::FeedbackStore> store) const;

  /// The stamp feedback payloads are guarded by: a 64-bit digest of the
  /// base fingerprint.
  uint64_t feedback_stamp() const {
    return learn::StampFingerprint(
        base_fingerprint_.num_vertices, base_fingerprint_.num_labels,
        base_fingerprint_.num_vertex_labels, base_fingerprint_.num_edges,
        base_fingerprint_.edge_hash);
  }

  // ---- Dynamic layer ----

  /// Applies one batch of edge deltas: compacts the overlay into a fresh
  /// CSR graph, migrates every built statistics structure onto it
  /// incrementally (exact in-place updates for 1-edge Markov entries,
  /// base-relation degree maps and SumRDF buckets; targeted per-key
  /// eviction for entries whose labels changed; Characteristic Sets
  /// dropped for lazy rebuild), evicts affected CegCache entries, appends
  /// the net delta to the replay log and advances the epoch. No-op batches
  /// (all operations cancelled or redundant) still advance the epoch.
  ///
  /// Must run quiesced — no concurrent estimation — and invalidates every
  /// estimator instance constructed from this context (they hold
  /// references to the replaced statistics structures). Go through
  /// EstimationEngine::ApplyDeltas to have instances refreshed
  /// automatically.
  util::StatusOr<dynamic::MaintenanceReport> ApplyDeltas(
      const std::vector<dynamic::EdgeDelta>& batch);

  /// Builds the *next-epoch* context off to the side, leaving this one
  /// fully serviceable: the batch is compacted into a fresh graph and every
  /// built statistics structure is migrated incrementally into a brand-new
  /// context (same mechanics as ApplyDeltas, including CEG-cache carry of
  /// unaffected builds), while `this` is only read through its thread-safe
  /// accessors. This is the RCU building block of the serving layer:
  /// readers keep estimating against the old context for as long as they
  /// hold it, the maintainer publishes the fork atomically, and
  /// ApplyDeltas' quiescence requirement is satisfied by never mutating
  /// the live state at all.
  ///
  /// Safe to run concurrently with estimation on `this`; NOT safe to run
  /// concurrently with another mutation (ApplyDeltas, TrimReplayLog, a
  /// second Fork) — maintenance is single-writer. `report`, if non-null,
  /// receives the same accounting ApplyDeltas would produce.
  util::StatusOr<std::unique_ptr<EstimationContext>> ForkWithDeltas(
      const std::vector<dynamic::EdgeDelta>& batch,
      dynamic::MaintenanceReport* report = nullptr) const;

  /// The context's dynamic identity: construction-time base fingerprint,
  /// XOR-combined hash of the net delta log, number of applied batches.
  dynamic::DynamicFingerprint dynamic_fingerprint() const {
    return {base_fingerprint_, delta_hash_, epoch_};
  }
  uint64_t epoch() const { return epoch_; }
  /// Net delta operations applied so far, in application order (the replay
  /// log that makes earlier-epoch snapshots stale-but-usable). After
  /// TrimReplayLog this is the surviving suffix: only deltas at epochs
  /// >= min_replayable_epoch() remain.
  const std::vector<dynamic::EdgeDelta>& delta_log() const {
    return replay_log_;
  }

  /// Drops the replay-log prefix (and epoch history) below `min_epoch`, so
  /// a long-lived churning process' net delta log stops growing without
  /// bound. Snapshots taken at epochs >= min_epoch stay stale-replayable;
  /// older ones will be rejected as fingerprint mismatches (their replay
  /// suffix is gone). Once anything has been trimmed, SaveSnapshot stops
  /// embedding the delta log — a partial log could not reconstruct the
  /// state from the base graph. Returns the number of net operations
  /// discarded. Same single-writer discipline as ApplyDeltas/Fork; safe
  /// against concurrent estimation (estimators never read the log).
  size_t TrimReplayLog(uint64_t min_epoch);

  /// The oldest epoch whose snapshot can still be replayed against this
  /// context (0 until the first TrimReplayLog).
  uint64_t min_replayable_epoch() const { return history_base_epoch_; }

  /// Per-cache resident sizes and hit/miss/evict counters, for
  /// observability (cegraph_stats inspect/refresh).
  struct CacheStats {
    std::string name;
    size_t entries = 0;
    util::CacheCounters counters;
  };
  std::vector<CacheStats> CollectCacheStats() const;

  /// Fills the statistics caches for `workload` ahead of time: enumerates
  /// every connected sub-query a Markov lookup can hit, every two-join
  /// pattern, every base relation and every CEG_OCR closing key the
  /// workload's queries can request, deduplicates across the workload, and
  /// computes them in parallel (harness::WorkloadRunner work-stealing over
  /// the flat task list). After Prewarm, estimation runs entirely on warm
  /// caches. Like the lazy accessors this is const: it only fills the
  /// mutable memo caches. Implemented in engine/prewarm.cc.
  PrewarmReport Prewarm(const std::vector<query::WorkloadQuery>& workload,
                        const PrewarmOptions& options = {}) const;

  /// Persists every statistic built so far (lazily or via Prewarm) to a
  /// versioned binary snapshot at `path`, stamped with the context's
  /// dynamic fingerprint (base fingerprint in the header; delta hash and
  /// epoch in a dynamic-state section when the context has applied
  /// deltas). `format` picks the container: the serde-parsed v1/v2 layout
  /// or the mmap-able arena (version 3, see engine/snapshot.h). Mapped
  /// entries a context serves but has never copied into its memo caches
  /// are not re-exported — Save persists computed entries, and missing
  /// ones recompute lazily to identical values. Implemented in
  /// engine/snapshot.cc.
  util::Status SaveSnapshot(const std::string& path,
                            SnapshotFormat format = SnapshotFormat::kV2) const;

  /// How one LoadSnapshot resolved.
  struct SnapshotLoadReport {
    /// False: the snapshot matched this context's state exactly. True: the
    /// snapshot was taken at an earlier epoch of the same delta log and
    /// was made usable by replaying the missing deltas against its
    /// entries (targeted eviction + exact refresh).
    bool stale = false;
    uint64_t snapshot_epoch = 0;
    size_t replayed_deltas = 0;
    size_t evicted_entries = 0;
    /// True: arena indexes were attached in place (zero-copy; lookups
    /// serve straight off the mapped bytes until first write). False: the
    /// sections were parsed/materialized into the memo caches (v1/v2
    /// files, and stale arena loads — the replay scrub only sees memo
    /// entries).
    bool mapped = false;
    /// Total bytes of arena images backing this load (0 for pure v1/v2).
    uint64_t mapped_bytes = 0;
    /// Time opening + validating the container(s): mmap and header/index
    /// checks for arenas, file reads and manifest hash checks for shards.
    double map_millis = 0;
    /// Time parsing/merging/attaching sections into the context.
    double parse_millis = 0;
  };

  /// Persists the same statistics as a *sharded* snapshot: a manifest at
  /// `manifest_path` plus `<manifest_path>.common` (whole-graph summaries
  /// and dynamic state) and `<manifest_path>.shard<k>` for k in
  /// [0, num_shards) (the keyed sections split by key-hash range; see
  /// engine/snapshot.h). The union of all shards is entry-for-entry
  /// equivalent to SaveSnapshot's monolithic file; a fleet process loads
  /// only its shard set. `format` picks the shard files' container exactly
  /// as in SaveSnapshot. Implemented in engine/snapshot.cc.
  util::Status SaveSnapshotShards(
      const std::string& manifest_path, uint32_t num_shards,
      SnapshotFormat format = SnapshotFormat::kV2) const;

  /// Restores a sharded snapshot from the manifest at `manifest_path`,
  /// loading the common file plus the shard files named in `shards`
  /// (empty = all shards). Every referenced file is checked against the
  /// manifest's size/content hash before parsing, so a corrupt shard is a
  /// clean InvalidArgument, and fingerprint/options guards apply per file
  /// exactly as in LoadSnapshot. Requested ids must be in range and
  /// distinct. Implemented in engine/snapshot.cc.
  util::Status LoadSnapshotShards(const std::string& manifest_path,
                                  const std::vector<uint32_t>& shards,
                                  SnapshotLoadReport* report = nullptr) const;

  /// Restores a snapshot written by SaveSnapshot. Rejects files whose
  /// magic/version are unknown (InvalidArgument), that are truncated or
  /// corrupted (OutOfRange/InvalidArgument from the bounds-checked
  /// reader), or whose fingerprint is incompatible (FailedPrecondition:
  /// "fingerprint mismatch — rebuild"). A shard-manifest path (see
  /// engine/snapshot.h) is accepted transparently and loads the union of
  /// all shards.
  ///
  /// Compatibility is judged against the dynamic fingerprint: a snapshot
  /// whose (delta hash, epoch) equals this context's state loads fully; a
  /// snapshot taken at an *earlier epoch of the same delta log* is stale
  /// but usable — its keyed-cache sections are merged and then scrubbed
  /// for the labels the missing deltas touched (whole-graph summaries are
  /// skipped and rebuild lazily); anything else is a mismatch. `report`,
  /// if non-null, receives which path was taken. Loaded entries merge into
  /// the lazy caches (existing entries win). Call before handing out
  /// estimators. Implemented in engine/snapshot.cc.
  util::Status LoadSnapshot(const std::string& path,
                            SnapshotLoadReport* report = nullptr) const;

  /// The zero-copy restore path: mmaps an arena (version 3) snapshot and
  /// attaches its per-section hash indexes behind the stats structures'
  /// lookup APIs — nothing is parsed up front, lookups serve straight off
  /// the mapped page cache and copy into the memo caches on first use.
  /// Freshness/options guards are identical to LoadSnapshot; stale arena
  /// snapshots are materialized into the memo caches and scrubbed exactly
  /// like a v2 load (the replay scrub only sees memo entries, so stale
  /// indexes are never left attached). Shard-manifest paths are accepted
  /// and resolve each file's format by magic; v1/v2 files fall back to the
  /// parse path transparently. LoadSnapshot itself routes arena files
  /// here, so callers only need this entry point to force the distinction
  /// in reports/benchmarks. Implemented in engine/snapshot.cc.
  util::Status LoadSnapshotMapped(const std::string& path,
                                  SnapshotLoadReport* report = nullptr) const;

 private:
  /// The dynamic fingerprint after each epoch: epoch_history_[k] is the
  /// (delta hash, replay-log length) right after epoch
  /// history_base_epoch_ + k (the first entry is the oldest replayable
  /// point; pristine contexts start with {0, 0} at epoch 0). LoadSnapshot
  /// uses it to recognize snapshots taken at any earlier epoch of this
  /// log. `log_size` counts from epoch 0, so after TrimReplayLog the
  /// in-memory replay_log_ index is log_size - log_trimmed_.
  struct EpochMark {
    uint64_t delta_hash = 0;
    size_t log_size = 0;
  };

  /// Uninitialized shell for ForkWithDeltas, which fills every field
  /// itself (the public constructors seed a pristine epoch history).
  struct ForkTag {};
  explicit EstimationContext(ForkTag) : g_(nullptr) {}

  /// The monolithic-snapshot load over an in-memory image — the single
  /// parse/merge path behind LoadSnapshot (which reads the file) and
  /// LoadSnapshotShards (which verifies each file's bytes against the
  /// manifest hash first and must load exactly the bytes it verified).
  /// `validate_only` stops after the staging parse (nothing merges) —
  /// the manifest path validates every image before applying any, so a
  /// failed multi-file load leaves the context untouched. `scrub_stale`
  /// gates the post-merge stale-entry scrub; the manifest path runs it
  /// once on the last image instead of once per file (every file of one
  /// artifact carries the same epoch stamp). Implemented in
  /// engine/snapshot.cc.
  util::Status LoadSnapshotBytes(std::string_view bytes,
                                 SnapshotLoadReport* report,
                                 bool validate_only = false,
                                 bool scrub_stale = true) const;

  /// The arena-image twin of LoadSnapshotBytes: validates the meta
  /// section and every index header first (`validate_only` stops there),
  /// then either attaches the indexes in place (fresh) or materializes
  /// them into the memo caches and scrubs (stale). The structures keep
  /// `arena` alive through shared_ptr owners, so a hot-swap drops the
  /// mapping only once the last reader is gone. Implemented in
  /// engine/snapshot.cc.
  util::Status LoadSnapshotArena(
      const std::shared_ptr<const util::MappedArena>& arena,
      SnapshotLoadReport* report, bool validate_only = false,
      bool scrub_stale = true) const;

  /// The EpochMark of `epoch`, or null when it predates the trimmed
  /// history or postdates the current epoch.
  const EpochMark* MarkAt(uint64_t epoch) const {
    if (epoch < history_base_epoch_ ||
        epoch - history_base_epoch_ >= epoch_history_.size()) {
      return nullptr;
    }
    return &epoch_history_[epoch - history_base_epoch_];
  }

  /// Owns the graph after compaction (or from the owning constructor);
  /// null while serving a borrowed base graph.
  std::shared_ptr<const graph::Graph> owned_;
  const graph::Graph* g_;
  ContextOptions options_;

  graph::GraphFingerprint base_fingerprint_;
  uint64_t delta_hash_ = 0;
  uint64_t epoch_ = 0;
  std::vector<dynamic::EdgeDelta> replay_log_;
  std::vector<EpochMark> epoch_history_;
  uint64_t history_base_epoch_ = 0;  ///< epoch of epoch_history_[0]
  size_t log_trimmed_ = 0;  ///< ops dropped from the front of the log

  mutable std::mutex mutex_;
  mutable std::map<int, std::unique_ptr<stats::MarkovTable>> markov_;
  mutable std::unique_ptr<stats::CycleClosingRates> rates_;
  mutable std::unique_ptr<stats::StatsCatalog> catalog_;
  mutable std::unique_ptr<stats::CharacteristicSets> char_sets_;
  mutable std::unique_ptr<stats::SummaryGraph> summary_;
  mutable std::unique_ptr<stats::DispersionCatalog> dispersion_;
  mutable CegCache ceg_cache_;

  /// Learned-feedback corrections, shared across ForkWithDeltas epochs
  /// (guarded by mutex_ for creation; the store itself is thread-safe).
  mutable std::shared_ptr<learn::FeedbackStore> feedback_;

  /// Unparsed summary-graph payload adopted from a mapped arena snapshot,
  /// parsed on first use so arena open time stays O(sections). The owner
  /// handle keeps the mapping alive until the parse (or forever, if the
  /// summary is never touched). Guarded by mutex_; a null owner means no
  /// payload is pending.
  mutable std::string_view pending_summary_;
  mutable std::shared_ptr<const void> pending_summary_owner_;

  /// Parses pending_summary_ into summary_ (mutex_ must be held). A
  /// payload that fails to parse is dropped: the summary is derived data,
  /// so summary_graph() then falls back to building one from the graph.
  void MaterializePendingSummaryLocked() const;
};

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_ESTIMATION_CONTEXT_H_
