#ifndef CEGRAPH_ENGINE_ESTIMATION_CONTEXT_H_
#define CEGRAPH_ENGINE_ESTIMATION_CONTEXT_H_

#include <map>
#include <memory>
#include <mutex>

#include "engine/ceg_cache.h"
#include "graph/graph.h"
#include "stats/char_sets.h"
#include "stats/cycle_closing.h"
#include "stats/degree_stats.h"
#include "stats/dispersion.h"
#include "stats/markov_table.h"
#include "stats/summary_graph.h"
#include "util/status.h"

namespace cegraph::engine {

/// Construction knobs for the shared statistic structures. Defaults follow
/// the paper's experimental setup (§6.1): h = 2 Markov tables, 64-bucket
/// SumRDF summaries.
struct ContextOptions {
  /// Markov table size used by estimators that don't name one explicitly.
  int markov_h = 2;
  /// CEG construction rules shared by every optimistic estimator.
  ceg::CegOOptions ceg_options;
  /// Cycle-closing-rate sampling (CEG_OCR).
  stats::CycleClosingOptions cycle_closing;
  /// SumRDF summary buckets.
  uint32_t summary_buckets = 64;
  /// SumRDF matching step budget (its "timeout").
  uint64_t sumrdf_step_budget = 50'000'000;
  /// Cap for materializing 2-join degree statistics (MOLP+2j).
  uint64_t stats_materialize_cap = 4'000'000;
};

/// The shared substrate of every estimator over one graph: the graph
/// itself, lazily built summary/statistic structures (Markov tables per h,
/// cycle-closing rates, degree-statistics catalog, characteristic sets,
/// SumRDF summary) and the CEG build cache. Estimators constructed through
/// the EstimatorRegistry borrow these instead of each bench/example
/// re-instantiating its own copies.
///
/// Every accessor is thread-safe; the returned structures are themselves
/// safe for concurrent use (their memo caches are mutex-guarded), so one
/// context serves a parallel WorkloadRunner. The context must outlive every
/// estimator created from it.
class EstimationContext {
 public:
  explicit EstimationContext(const graph::Graph& g, ContextOptions options = {})
      : g_(g), options_(options) {}

  EstimationContext(const EstimationContext&) = delete;
  EstimationContext& operator=(const EstimationContext&) = delete;

  const graph::Graph& graph() const { return g_; }
  const ContextOptions& options() const { return options_; }

  /// The size-`h` Markov table (h = 0 means options().markov_h). Built on
  /// first use, then shared.
  const stats::MarkovTable& markov(int h = 0) const;

  /// Cycle-closing rates for CEG_OCR.
  const stats::CycleClosingRates& cycle_closing_rates() const;

  /// Degree-statistics catalog for MOLP / CBS.
  const stats::StatsCatalog& stats_catalog() const;

  /// Characteristic Sets summary.
  const stats::CharacteristicSets& characteristic_sets() const;

  /// SumRDF summary graph.
  const stats::SummaryGraph& summary_graph() const;

  /// Extension-dispersion catalog (§8 future-work estimators).
  const stats::DispersionCatalog& dispersion_catalog() const;

  /// The shared CEG build cache.
  CegCache& ceg_cache() const { return ceg_cache_; }

 private:
  const graph::Graph& g_;
  ContextOptions options_;

  mutable std::mutex mutex_;
  mutable std::map<int, std::unique_ptr<stats::MarkovTable>> markov_;
  mutable std::unique_ptr<stats::CycleClosingRates> rates_;
  mutable std::unique_ptr<stats::StatsCatalog> catalog_;
  mutable std::unique_ptr<stats::CharacteristicSets> char_sets_;
  mutable std::unique_ptr<stats::SummaryGraph> summary_;
  mutable std::unique_ptr<stats::DispersionCatalog> dispersion_;
  mutable CegCache ceg_cache_;
};

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_ESTIMATION_CONTEXT_H_
