#include "engine/engine.h"

namespace cegraph::engine {

util::StatusOr<const CardinalityEstimator*> EstimationEngine::Estimator(
    const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instances_.find(name);
    if (it != instances_.end()) return it->second.get();
  }
  auto created = registry_->Create(name, *context_);
  if (!created.ok()) return created.status();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = instances_.emplace(name, std::move(created).value());
  return it->second.get();
}

util::StatusOr<dynamic::MaintenanceReport> EstimationEngine::ApplyDeltas(
    const std::vector<dynamic::EdgeDelta>& batch) {
  auto report = context_->ApplyDeltas(batch);
  if (report.ok()) {
    // Drop instances only once the context actually swapped structures
    // (their statistics references are dead now; the call runs quiesced,
    // so nothing observes them in between). A rejected batch leaves the
    // context untouched — previously returned estimator pointers must
    // stay valid so the caller can keep serving the unchanged state.
    std::lock_guard<std::mutex> lock(mutex_);
    instances_.clear();
  }
  return report;
}

util::StatusOr<std::vector<const CardinalityEstimator*>>
EstimationEngine::Estimators(const std::vector<std::string>& names) const {
  std::vector<const CardinalityEstimator*> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    auto estimator = Estimator(name);
    if (!estimator.ok()) return estimator.status();
    out.push_back(*estimator);
  }
  return out;
}

}  // namespace cegraph::engine
