#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace cegraph::graph {

util::Status WriteGraphText(const Graph& g, std::ostream& os) {
  os << "# cegraph edge list: num_vertices num_labels, then optional\n"
     << "# 'v vertex vertex_label' lines, then src dst label\n";
  os << g.num_vertices() << " " << g.num_labels() << "\n";
  if (g.num_vertex_labels() > 1) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.vertex_label(v) != 0) {
        os << "v " << v << " " << g.vertex_label(v) << "\n";
      }
    }
  }
  for (const Edge& e : g.edges()) {
    os << e.src << " " << e.dst << " " << e.label << "\n";
  }
  if (!os) return util::InternalError("write failed");
  return util::Status::OK();
}

util::StatusOr<Graph> ReadGraphText(std::istream& is) {
  std::string line;
  bool have_header = false;
  uint64_t num_vertices = 0, num_labels = 0;
  std::vector<Edge> edges;
  std::vector<VertexLabel> vertex_labels;
  size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    if (have_header && line[start] == 'v') {
      std::istringstream vfields(line.substr(start + 1));
      uint64_t vertex, vlabel;
      if (!(vfields >> vertex >> vlabel) || vertex >= num_vertices) {
        return util::InvalidArgumentError(
            "malformed vertex-label line " + std::to_string(line_number));
      }
      if (vertex_labels.empty()) {
        vertex_labels.assign(static_cast<size_t>(num_vertices), 0);
      }
      vertex_labels[vertex] = static_cast<VertexLabel>(vlabel);
      continue;
    }
    std::istringstream fields(line);
    if (!have_header) {
      if (!(fields >> num_vertices >> num_labels)) {
        return util::InvalidArgumentError(
            "malformed header at line " + std::to_string(line_number));
      }
      if (num_vertices > 0xFFFFFFFFull || num_labels > 0xFFFFFFFFull) {
        return util::InvalidArgumentError("header out of range");
      }
      have_header = true;
      continue;
    }
    uint64_t src, dst, label;
    if (!(fields >> src >> dst >> label)) {
      return util::InvalidArgumentError(
          "malformed edge at line " + std::to_string(line_number));
    }
    edges.push_back({static_cast<VertexId>(src), static_cast<VertexId>(dst),
                     static_cast<Label>(label)});
  }
  if (!have_header) {
    return util::InvalidArgumentError("missing header line");
  }
  return Graph::Create(static_cast<uint32_t>(num_vertices),
                       static_cast<uint32_t>(num_labels), std::move(edges),
                       std::move(vertex_labels));
}

util::Status SaveGraph(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) return util::NotFoundError("cannot open for writing: " + path);
  return WriteGraphText(g, os);
}

util::StatusOr<Graph> LoadGraph(const std::string& path) {
  std::ifstream is(path);
  if (!is) return util::NotFoundError("cannot open: " + path);
  return ReadGraphText(is);
}

}  // namespace cegraph::graph
