#include "graph/datasets.h"

#include <array>

#include "graph/generators.h"

namespace cegraph::graph {

namespace {

struct DatasetSpec {
  DatasetInfo info;
  GeneratorConfig config;
};

/// The six stand-in datasets (DESIGN.md §3). Sizes are laptop-scale but the
/// *shape* parameters (density, label count, skew, correlation) track the
/// paper's Table 2 datasets:
///  - imdb_like:     mid-size, many labels, strong correlation (entity types)
///  - yago_like:     sparse knowledge graph, many labels
///  - dblp_like:     few labels, high average degree
///  - watdiv_like:   schema-regular (many types, low skew)
///  - hetionet_like: small but dense, few labels
///  - epinions_like: random uncorrelated labels (the paper's control)
std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs;

  {
    DatasetSpec s;
    s.info = {"imdb_like", "Movies", "IMDb (27M V, 65M E, 127 labels)",
              16000, 96000, 48};
    s.config = {.num_vertices = 16000,
                .num_edges = 96000,
                .num_labels = 48,
                .num_types = 6,
                .label_zipf_s = 1.1,
                .preferential_p = 0.6,
                .random_labels = false,
                .seed = 0xCE61};
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.info = {"yago_like", "Knowledge Graph", "YAGO (13M V, 16M E, 91 labels)",
              24000, 36000, 40};
    s.config = {.num_vertices = 24000,
                .num_edges = 36000,
                .num_labels = 40,
                .num_types = 8,
                .label_zipf_s = 1.2,
                .preferential_p = 0.65,
                .random_labels = false,
                .seed = 0xCE62};
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.info = {"dblp_like", "Citations", "DBLP (23M V, 56M E, 27 labels)",
              12000, 72000, 12};
    s.config = {.num_vertices = 12000,
                .num_edges = 72000,
                .num_labels = 12,
                .num_types = 4,
                .label_zipf_s = 1.0,
                .preferential_p = 0.7,
                .random_labels = false,
                .seed = 0xCE63};
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.info = {"watdiv_like", "Products", "WatDiv (1M V, 11M E, 86 labels)",
              8000, 44000, 30};
    s.config = {.num_vertices = 8000,
                .num_edges = 44000,
                .num_labels = 30,
                .num_types = 10,
                .label_zipf_s = 0.6,   // schema-regular: mild skew
                .preferential_p = 0.3,  // near-uniform degrees
                .random_labels = false,
                .seed = 0xCE64};
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.info = {"hetionet_like", "Social Networks",
              "Hetionet (45K V, 2M E, 24 labels)", 2500, 50000, 24};
    s.config = {.num_vertices = 2500,
                .num_edges = 50000,
                .num_labels = 24,
                .num_types = 5,
                .label_zipf_s = 1.0,
                .preferential_p = 0.55,
                .random_labels = false,
                .seed = 0xCE65};
    specs.push_back(s);
  }
  {
    DatasetSpec s;
    s.info = {"epinions_like", "Consumer Reviews",
              "Epinions (76K V, 509K E, 50 labels)", 4000, 27000, 25};
    s.config = {.num_vertices = 4000,
                .num_edges = 27000,
                .num_labels = 25,
                .num_types = 1,
                .label_zipf_s = 1.0,
                .preferential_p = 0.6,
                .random_labels = true,  // the paper's uncorrelated control
                .seed = 0xCE66};
    specs.push_back(s);
  }
  return specs;
}

const std::vector<DatasetSpec>& Specs() {
  static const std::vector<DatasetSpec>& specs =
      *new std::vector<DatasetSpec>(BuildSpecs());
  return specs;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  for (const auto& s : Specs()) names.push_back(s.info.name);
  return names;
}

util::StatusOr<DatasetInfo> GetDatasetInfo(const std::string& name) {
  for (const auto& s : Specs()) {
    if (s.info.name == name) return s.info;
  }
  return util::NotFoundError("unknown dataset: " + name);
}

util::StatusOr<Graph> MakeDataset(const std::string& name) {
  for (const auto& s : Specs()) {
    if (s.info.name == name) return GenerateGraph(s.config);
  }
  return util::NotFoundError("unknown dataset: " + name);
}

}  // namespace cegraph::graph
