#ifndef CEGRAPH_GRAPH_GRAPH_IO_H_
#define CEGRAPH_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace cegraph::graph {

/// Text edge-list serialization, one edge per line:
///
///   # comment lines and blank lines are ignored
///   <num_vertices> <num_labels>        (header, first data line)
///   v <vertex> <vertex_label>          (optional vertex-label lines)
///   <src> <dst> <label>                (one per edge)
///
/// This is the interchange format of the `cegraph_estimate` CLI and of
/// users bringing their own graphs (the same shape as the G-CARE
/// benchmark's edge lists). Vertex-label lines may be omitted entirely
/// for vertex-unlabeled graphs.
util::Status WriteGraphText(const Graph& g, std::ostream& os);
util::StatusOr<Graph> ReadGraphText(std::istream& is);

/// File convenience wrappers.
util::Status SaveGraph(const Graph& g, const std::string& path);
util::StatusOr<Graph> LoadGraph(const std::string& path);

}  // namespace cegraph::graph

#endif  // CEGRAPH_GRAPH_GRAPH_IO_H_
