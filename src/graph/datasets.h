#ifndef CEGRAPH_GRAPH_DATASETS_H_
#define CEGRAPH_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace cegraph::graph {

/// Metadata describing a named stand-in dataset (Table 2 of the paper).
struct DatasetInfo {
  std::string name;      ///< e.g. "imdb_like"
  std::string domain;    ///< e.g. "Movies"
  std::string paper_counterpart;  ///< e.g. "IMDb (27M V, 65M E, 127 labels)"
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;        ///< requested edge count (actual may differ
                                 ///< slightly after deduplication)
  uint32_t num_labels = 0;
};

/// Names of the six stand-in datasets, in the paper's Table 2 order:
/// imdb_like, yago_like, dblp_like, watdiv_like, hetionet_like,
/// epinions_like.
std::vector<std::string> DatasetNames();

/// Returns the metadata for `name`; NotFound for unknown names.
util::StatusOr<DatasetInfo> GetDatasetInfo(const std::string& name);

/// Materializes the named dataset (deterministic). NotFound for unknown
/// names. See DESIGN.md §3 for the substitution rationale per dataset.
util::StatusOr<Graph> MakeDataset(const std::string& name);

}  // namespace cegraph::graph

#endif  // CEGRAPH_GRAPH_DATASETS_H_
