#include "graph/graph.h"

#include <algorithm>

#include "util/random.h"

namespace cegraph::graph {

util::StatusOr<Graph> Graph::Create(uint32_t num_vertices, uint32_t num_labels,
                                    std::vector<Edge> edges,
                                    std::vector<VertexLabel> vertex_labels) {
  if (!vertex_labels.empty() && vertex_labels.size() != num_vertices) {
    return util::InvalidArgumentError("vertex label arity mismatch");
  }
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return util::InvalidArgumentError("edge endpoint out of range");
    }
    if (e.label >= num_labels) {
      return util::InvalidArgumentError("edge label out of range");
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_labels_ = num_labels;
  g.vertex_labels_ = std::move(vertex_labels);
  for (VertexLabel vl : g.vertex_labels_) {
    g.num_vertex_labels_ = std::max(g.num_vertex_labels_, vl + 1);
  }

  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.label != b.label) return a.label < b.label;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  g.edges_ = std::move(edges);

  const uint64_t m = g.edges_.size();
  g.rel_off_.assign(num_labels + 1, 0);
  for (const Edge& e : g.edges_) ++g.rel_off_[e.label + 1];
  for (uint32_t l = 0; l < num_labels; ++l) g.rel_off_[l + 1] += g.rel_off_[l];

  g.rel_size_.assign(num_labels, 0);
  for (uint32_t l = 0; l < num_labels; ++l) {
    g.rel_size_[l] = g.rel_off_[l + 1] - g.rel_off_[l];
  }

  // Both offset tables are flat label-major arrays: one allocation of
  // num_labels * (num_vertices + 1) offsets each, instead of a vector per
  // label.
  const size_t stride = static_cast<size_t>(num_vertices) + 1;

  // Forward CSR straight from the (label, src, dst) sort order.
  g.fwd_dst_.resize(m);
  g.fwd_off_.resize(static_cast<size_t>(num_labels) * stride);
  for (uint32_t l = 0; l < num_labels; ++l) {
    uint64_t* off = g.fwd_off_.data() + l * stride;
    std::fill(off, off + stride, g.rel_off_[l]);
    for (uint64_t i = g.rel_off_[l]; i < g.rel_off_[l + 1]; ++i) {
      ++off[g.edges_[i].src + 1];
    }
    // off currently holds counts shifted by one, based at rel_off_[l].
    for (uint32_t v = 0; v < num_vertices; ++v) {
      off[v + 1] += off[v] - g.rel_off_[l];
    }
    for (uint64_t i = g.rel_off_[l]; i < g.rel_off_[l + 1]; ++i) {
      g.fwd_dst_[i] = g.edges_[i].dst;
    }
  }

  // Backward CSR: bucket edges by (label, dst), then fill sources in
  // (dst, src) order.
  std::vector<Edge> by_dst = g.edges_;
  std::sort(by_dst.begin(), by_dst.end(), [](const Edge& a, const Edge& b) {
    if (a.label != b.label) return a.label < b.label;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.src < b.src;
  });
  g.bwd_src_.resize(m);
  g.bwd_off_.resize(static_cast<size_t>(num_labels) * stride);
  for (uint32_t l = 0; l < num_labels; ++l) {
    uint64_t* off = g.bwd_off_.data() + l * stride;
    std::fill(off, off + stride, g.rel_off_[l]);
    for (uint64_t j = g.rel_off_[l]; j < g.rel_off_[l + 1]; ++j) {
      ++off[by_dst[j].dst + 1];
    }
    for (uint32_t v = 0; v < num_vertices; ++v) {
      off[v + 1] += off[v] - g.rel_off_[l];
    }
    for (uint64_t j = g.rel_off_[l]; j < g.rel_off_[l + 1]; ++j) {
      g.bwd_src_[j] = by_dst[j].src;
    }
  }

  // Per-relation summary statistics.
  g.max_out_degree_.assign(num_labels, 0);
  g.max_in_degree_.assign(num_labels, 0);
  g.distinct_src_.assign(num_labels, 0);
  g.distinct_dst_.assign(num_labels, 0);
  for (uint32_t l = 0; l < num_labels; ++l) {
    const uint64_t* fwd = g.fwd_off_.data() + l * stride;
    const uint64_t* bwd = g.bwd_off_.data() + l * stride;
    for (uint32_t v = 0; v < num_vertices; ++v) {
      const uint32_t od = static_cast<uint32_t>(fwd[v + 1] - fwd[v]);
      const uint32_t id = static_cast<uint32_t>(bwd[v + 1] - bwd[v]);
      g.max_out_degree_[l] = std::max(g.max_out_degree_[l], od);
      g.max_in_degree_[l] = std::max(g.max_in_degree_[l], id);
      if (od > 0) ++g.distinct_src_[l];
      if (id > 0) ++g.distinct_dst_[l];
    }
  }

  // Fingerprint: a mixing chain over the sorted deduplicated edge list and
  // the vertex labels. The sort above makes the hash independent of the
  // caller's edge order.
  g.fingerprint_.num_vertices = num_vertices;
  g.fingerprint_.num_labels = num_labels;
  g.fingerprint_.num_vertex_labels = g.num_vertex_labels_;
  g.fingerprint_.num_edges = m;
  uint64_t h = 0x5CE6'0000'0001ull ^ (uint64_t{num_vertices} << 32 | m);
  for (const Edge& e : g.edges_) {
    h = util::MixHash(h ^ (uint64_t{e.src} << 32 | e.dst));
    h = util::MixHash(h ^ e.label);
  }
  for (VertexLabel vl : g.vertex_labels_) h = util::MixHash(h ^ vl);
  g.fingerprint_.edge_hash = h;

  return g;
}

std::span<const Edge> Graph::RelationEdges(Label l) const {
  return {edges_.data() + rel_off_[l],
          static_cast<size_t>(rel_off_[l + 1] - rel_off_[l])};
}

std::span<const VertexId> Graph::OutNeighbors(VertexId v, Label l) const {
  const uint64_t* off = fwd_off_.data() + OffsetBase(l);
  return {fwd_dst_.data() + off[v], static_cast<size_t>(off[v + 1] - off[v])};
}

std::span<const VertexId> Graph::InNeighbors(VertexId v, Label l) const {
  const uint64_t* off = bwd_off_.data() + OffsetBase(l);
  return {bwd_src_.data() + off[v], static_cast<size_t>(off[v + 1] - off[v])};
}

bool Graph::HasEdge(VertexId src, VertexId dst, Label l) const {
  const auto nbrs = OutNeighbors(src, l);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

}  // namespace cegraph::graph
