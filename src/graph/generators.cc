#include "graph/generators.h"

#include <vector>

namespace cegraph::graph {

util::StatusOr<Graph> GenerateGraph(const GeneratorConfig& config) {
  if (config.num_vertices == 0 || config.num_labels == 0) {
    return util::InvalidArgumentError("empty vertex or label domain");
  }
  util::Rng rng(config.seed);
  util::ZipfDistribution label_dist(config.num_labels, config.label_zipf_s);

  // Vertex types drive label correlation.
  std::vector<uint32_t> type(config.num_vertices);
  const uint32_t num_types = std::max(1u, config.num_types);
  for (auto& t : type) {
    t = static_cast<uint32_t>(rng.Uniform(num_types));
  }

  // Preferential-attachment pool: every accepted edge feeds its endpoints
  // back into the pool, so high-degree vertices keep attracting edges.
  std::vector<VertexId> pool;
  pool.reserve(2 * config.num_edges);

  auto pick_vertex = [&]() -> VertexId {
    if (!pool.empty() && rng.Bernoulli(config.preferential_p)) {
      return pool[rng.Uniform(pool.size())];
    }
    return static_cast<VertexId>(rng.Uniform(config.num_vertices));
  };

  std::vector<Edge> edges;
  edges.reserve(config.num_edges);
  // Oversample: deduplication in Graph::Create may drop repeats.
  const uint64_t attempts = config.num_edges + config.num_edges / 4 + 16;
  for (uint64_t i = 0; i < attempts && edges.size() < config.num_edges; ++i) {
    const VertexId src = pick_vertex();
    const VertexId dst = pick_vertex();
    if (src == dst) continue;
    Label label;
    if (config.random_labels) {
      label = static_cast<Label>(rng.Uniform(config.num_labels));
    } else {
      // Rotate the skewed label distribution by the source's type so that
      // vertices of the same type emit correlated label sets.
      const uint64_t base = label_dist.Sample(rng);
      const uint64_t stride =
          std::max<uint64_t>(1, config.num_labels / num_types);
      label = static_cast<Label>((base + type[src] * stride) %
                                 config.num_labels);
    }
    edges.push_back({src, dst, label});
    pool.push_back(src);
    pool.push_back(dst);
  }

  // Entity types double as vertex labels, so generated datasets support
  // the paper's vertex-label extension out of the box.
  std::vector<VertexLabel> vertex_labels(type.begin(), type.end());
  return Graph::Create(config.num_vertices, config.num_labels,
                       std::move(edges), std::move(vertex_labels));
}

Graph MakeRunningExampleGraph() {
  // Labels: A=0, B=1, C=2, D=3, E=4. A small graph in the spirit of the
  // paper's Fig. 2: a chain of relations A -> B -> {C, D, E} with skewed
  // fan-outs so that different CEG paths give different estimates.
  constexpr Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;
  std::vector<Edge> edges = {
      // A edges into the B-sources.
      {0, 4, kA},
      {1, 4, kA},
      {2, 4, kA},
      {3, 5, kA},
      // B edges (2 of them, as in Table 1 of the paper).
      {4, 6, kB},
      {5, 7, kB},
      // C edges out of B-destinations (3 B->C pairs overall).
      {6, 8, kC},
      {6, 9, kC},
      {7, 8, kC},
      // D edges out of B-destinations.
      {6, 10, kD},
      {7, 10, kD},
      {7, 11, kD},
      // E edges out of B-destinations; vertex 6 has E-out-degree 3.
      {6, 12, kE},
      {6, 13, kE},
      {6, 14, kE},
      {7, 12, kE},
  };
  auto g = Graph::Create(16, 5, std::move(edges));
  return std::move(g).value();
}

}  // namespace cegraph::graph
