#ifndef CEGRAPH_GRAPH_GRAPH_H_
#define CEGRAPH_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace cegraph::graph {

/// Vertex identifier; vertices are dense integers [0, num_vertices).
using VertexId = uint32_t;
/// Edge-label identifier; labels are dense integers [0, num_labels).
/// Each label corresponds to one binary relation R_l(src, dst), matching the
/// paper's representation of a labeled graph as one table per edge label
/// (Fig. 2).
using Label = uint32_t;

/// Vertex-label identifier. Vertex labels are optional (every vertex gets
/// label 0 when none are supplied); the paper treats them as a
/// straightforward extension of the Markov table (§6.1), which is exactly
/// how this library realizes them: labeled patterns flow through the same
/// lazy catalog.
using VertexLabel = uint32_t;

/// A directed labeled edge (one tuple of relation `label`).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Label label = 0;

  friend bool operator==(const Edge& a, const Edge& b) = default;
};

/// A cheap structural identity of a graph: shape counts plus an
/// order-independent 64-bit hash over the (deduplicated, sorted) edge list
/// and vertex labels. Two graphs with equal fingerprints are the same
/// dataset for statistics purposes; summary snapshots are guarded by it so
/// stats built for one graph are never loaded against another.
struct GraphFingerprint {
  uint32_t num_vertices = 0;
  uint32_t num_labels = 0;
  uint32_t num_vertex_labels = 1;
  uint64_t num_edges = 0;
  uint64_t edge_hash = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

/// An immutable edge-labeled directed graph with per-label forward and
/// backward adjacency (CSR), the storage substrate for every estimator in
/// this library.
///
/// Design notes:
///  - Parallel edges with identical (src, dst, label) are deduplicated:
///    a relation is a *set* of tuples.
///  - Adjacency lists are sorted, enabling O(log d) membership tests and
///    linear-time ordered intersections in the matcher.
///  - Per-label summary statistics used by the estimators (relation size,
///    max in/out degree, number of distinct sources/destinations) are
///    precomputed at construction.
class Graph {
 public:
  /// Builds a graph from an edge list. Fails with InvalidArgument if any
  /// endpoint is >= num_vertices or any label is >= num_labels.
  /// `vertex_labels` is optional: empty means "all vertices share label 0".
  static util::StatusOr<Graph> Create(
      uint32_t num_vertices, uint32_t num_labels, std::vector<Edge> edges,
      std::vector<VertexLabel> vertex_labels = {});

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t num_labels() const { return num_labels_; }
  /// Total number of (deduplicated) edges across all labels.
  uint64_t num_edges() const { return edges_.size(); }

  /// All edges of relation `l`, sorted by (src, dst).
  std::span<const Edge> RelationEdges(Label l) const;

  /// |R_l|: the cardinality of relation `l`.
  uint64_t RelationSize(Label l) const { return rel_size_[l]; }

  /// Out-neighbors of `v` via label `l`, sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v, Label l) const;
  /// In-neighbors of `v` via label `l`, sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId v, Label l) const;

  uint32_t OutDegree(VertexId v, Label l) const {
    return static_cast<uint32_t>(OutNeighbors(v, l).size());
  }
  uint32_t InDegree(VertexId v, Label l) const {
    return static_cast<uint32_t>(InNeighbors(v, l).size());
  }

  /// True iff edge (src --l--> dst) exists. O(log out-degree).
  bool HasEdge(VertexId src, VertexId dst, Label l) const;

  /// deg(src, R_l): maximum out-degree of any vertex in relation `l`.
  uint32_t MaxOutDegree(Label l) const { return max_out_degree_[l]; }
  /// deg(dst, R_l): maximum in-degree of any vertex in relation `l`.
  uint32_t MaxInDegree(Label l) const { return max_in_degree_[l]; }
  /// |pi_src(R_l)|: number of distinct sources in relation `l`.
  uint64_t NumDistinctSources(Label l) const { return distinct_src_[l]; }
  /// |pi_dst(R_l)|: number of distinct destinations in relation `l`.
  uint64_t NumDistinctDests(Label l) const { return distinct_dst_[l]; }

  /// Returns a copy of all edges (used by partitioning / re-labeling views).
  const std::vector<Edge>& edges() const { return edges_; }

  /// The label of vertex `v` (0 when the graph is vertex-unlabeled).
  VertexLabel vertex_label(VertexId v) const {
    return vertex_labels_.empty() ? 0 : vertex_labels_[v];
  }
  /// The raw vertex-label vector (empty when vertex-unlabeled). Exposed so
  /// derived graphs (dynamic::DeltaGraph::Compact) can reproduce the base
  /// graph's labeling — including its emptiness, which the fingerprint
  /// distinguishes from an explicit all-zeros vector.
  const std::vector<VertexLabel>& vertex_labels() const {
    return vertex_labels_;
  }
  /// Number of distinct vertex-label values (>= 1).
  uint32_t num_vertex_labels() const { return num_vertex_labels_; }

  /// The graph's structural fingerprint, computed once at Create.
  /// Deterministic across platforms (the edge list is sorted and the hash
  /// is a fixed mixing chain), so it is safe to persist.
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

 private:
  Graph() = default;

  /// Index into the flattened per-label offset arrays: label l's offsets
  /// occupy the (num_vertices + 1)-sized slice starting at l * stride.
  size_t OffsetBase(Label l) const {
    return static_cast<size_t>(l) * (num_vertices_ + 1);
  }

  uint32_t num_vertices_ = 0;
  uint32_t num_labels_ = 0;

  // Edges sorted by (label, src, dst); rel_off_[l]..rel_off_[l+1] delimits
  // relation l.
  std::vector<Edge> edges_;
  std::vector<uint64_t> rel_off_;

  // Forward CSR, flattened: one contiguous array of num_labels *
  // (num_vertices + 1) offsets (label-major) instead of a vector per label
  // — a single allocation, and the whole offset table is one relocatable
  // block. fwd_off_[OffsetBase(l) + v] .. [.. + v + 1] indexes into
  // fwd_dst_ (global array aligned with edges_ order).
  std::vector<uint64_t> fwd_off_;
  std::vector<VertexId> fwd_dst_;

  // Backward CSR, same flat layout, sorted by (label, dst, src).
  std::vector<uint64_t> bwd_off_;
  std::vector<VertexId> bwd_src_;

  std::vector<VertexLabel> vertex_labels_;
  uint32_t num_vertex_labels_ = 1;

  std::vector<uint64_t> rel_size_;
  std::vector<uint32_t> max_out_degree_;
  std::vector<uint32_t> max_in_degree_;
  std::vector<uint64_t> distinct_src_;
  std::vector<uint64_t> distinct_dst_;

  GraphFingerprint fingerprint_;
};

}  // namespace cegraph::graph

#endif  // CEGRAPH_GRAPH_GRAPH_H_
