#ifndef CEGRAPH_GRAPH_GENERATORS_H_
#define CEGRAPH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/random.h"
#include "util/status.h"

namespace cegraph::graph {

/// Configuration for the synthetic labeled-graph generator used to build the
/// six stand-in datasets (DESIGN.md §3).
///
/// The generator combines three mechanisms known to drive cardinality-
/// estimation difficulty in real graphs:
///   1. *Degree skew*: endpoints are chosen by preferential attachment with
///      probability `preferential_p` (otherwise uniformly), producing
///      heavy-tailed in/out degree distributions as in IMDb/YAGO/DBLP.
///   2. *Label skew*: labels are drawn from a Zipf(num_labels, label_zipf_s)
///      distribution, so some relations are much larger than others.
///   3. *Label correlation*: each vertex gets an entity type in
///      [0, num_types); the label distribution is rotated by the source
///      vertex's type, so labels co-occur around the same vertices the way
///      schema-typed edges do in property graphs. Setting
///      `random_labels = true` disables both skew and correlation, which
///      reproduces the paper's Epinions setup ("a graph that is guaranteed
///      to not have any correlations between edge labels").
struct GeneratorConfig {
  uint32_t num_vertices = 1000;
  uint64_t num_edges = 5000;
  uint32_t num_labels = 10;
  uint32_t num_types = 4;
  double label_zipf_s = 1.1;     ///< Zipf exponent over labels
  double preferential_p = 0.6;   ///< prob. of preferential endpoint choice
  bool random_labels = false;    ///< Epinions regime: uniform i.i.d. labels
  uint64_t seed = 42;
};

/// Generates a graph per `config`. Deterministic given `config.seed`.
util::StatusOr<Graph> GenerateGraph(const GeneratorConfig& config);

/// Builds the tiny running-example-style graph used by quickstart and unit
/// tests: 5 labels (A..E = 0..4) over a handful of vertices, mirroring the
/// flavor of the paper's Fig. 2 (a small multi-label graph on which every
/// statistic can be verified by hand). See tests/graph_test.cc for the exact
/// edge list.
Graph MakeRunningExampleGraph();

}  // namespace cegraph::graph

#endif  // CEGRAPH_GRAPH_GENERATORS_H_
