#ifndef CEGRAPH_UTIL_SHARD_H_
#define CEGRAPH_UTIL_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cegraph::util {

/// Key-range sharding helpers for the snapshot layer: every keyed
/// statistics entry is assigned to a shard by mapping its key through a
/// stable 64-bit hash and range-partitioning the hash space into
/// `num_shards` equal contiguous intervals. The hash (not the raw key) is
/// what gets range-split so the partition is balanced regardless of key
/// distribution, while staying a true range partition: shard k owns hashes
/// in [k * 2^64 / S, (k+1) * 2^64 / S).
///
/// Both functions are pure and fixed forever — shard membership is baked
/// into snapshot shard files on disk, so changing either would silently
/// orphan entries of existing artifacts.

/// FNV-1a over the key bytes. Deliberately not std::hash (whose value is
/// implementation-defined and may change across standard libraries).
inline uint64_t StableHash64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

/// Convenience for small fixed-width keys (labels, packed flag words).
inline uint64_t StableHash64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  return StableHash64(std::string_view(bytes, 8));
}

/// The shard owning `hash` under an S-way range partition of the 64-bit
/// hash space (the fixed-point "fastrange" reduction: scale the top 32
/// bits). num_shards must be >= 1; the result is always < num_shards.
inline uint32_t ShardOfHash(uint64_t hash, uint32_t num_shards) {
  return static_cast<uint32_t>(((hash >> 32) * num_shards) >> 32);
}

/// True iff an entry with `hash` belongs to `shard` of `num_shards`.
/// num_shards == 0 is the "unsharded" convention: everything belongs.
inline bool InShard(uint64_t hash, uint32_t shard, uint32_t num_shards) {
  return num_shards <= 1 || ShardOfHash(hash, num_shards) == shard;
}

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_SHARD_H_
