#ifndef CEGRAPH_UTIL_BOX_STATS_H_
#define CEGRAPH_UTIL_BOX_STATS_H_

#include <string>
#include <vector>

namespace cegraph::util {

/// Summary statistics mirroring the paper's box plots (§6.2): 25th/50th/75th
/// percentiles, min/max, and the mean computed after dropping the top 10% of
/// the distribution by magnitude ("excluding the top 10% of the distribution
/// (ignoring under/over estimations)").
struct BoxStats {
  size_t count = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
  double mean = 0;          ///< plain arithmetic mean
  double trimmed_mean = 0;  ///< mean after dropping top 10% by |value|

  /// One-line rendering, e.g. "n=360 min=-2.1 p25=-0.3 med=0.1 ...".
  std::string ToString() const;
};

/// Computes BoxStats over `values`. Returns all-zero stats for empty input.
BoxStats ComputeBoxStats(std::vector<double> values);

/// Linear-interpolated percentile of a *sorted* vector; q in [0, 100].
double Percentile(const std::vector<double>& sorted, double q);

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_BOX_STATS_H_
