#include "util/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/shard.h"

namespace cegraph::util {

namespace {

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PadTo(std::string& out, size_t align) {
  while (out.size() % align != 0) out.push_back('\0');
}

size_t AlignUp(size_t n, size_t align) {
  return (n + align - 1) / align * align;
}

constexpr size_t kHeaderBytes = 8 + 4 * 4;   // magic + 4 u32 words
constexpr size_t kTableEntryBytes = 24;      // id, reserved, offset, bytes

}  // namespace

// ---------------------------------------------------------------------------
// ArenaBuilder

void ArenaBuilder::AddSection(uint32_t id, std::string payload) {
  sections_.emplace_back(id, std::move(payload));
}

std::string ArenaBuilder::Finish() {
  std::string out;
  out.append(kArenaMagic, sizeof(kArenaMagic));
  AppendU32(out, kArenaEndianWord);
  AppendU32(out, kArenaVersion);
  AppendU32(out, static_cast<uint32_t>(sections_.size()));
  AppendU32(out, 0);  // reserved

  // Lay payloads out after the table, each at the next 8-aligned offset.
  size_t offset = AlignUp(kHeaderBytes + sections_.size() * kTableEntryBytes,
                          kArenaAlign);
  for (const auto& [id, payload] : sections_) {
    AppendU32(out, id);
    AppendU32(out, 0);  // reserved
    AppendU64(out, offset);
    AppendU64(out, payload.size());
    offset = AlignUp(offset + payload.size(), kArenaAlign);
  }
  PadTo(out, kArenaAlign);
  for (auto& [id, payload] : sections_) {
    out.append(payload);
    PadTo(out, kArenaAlign);
    payload.clear();
  }
  sections_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// MappedArena

Status MappedArena::Validate() {
  if (size_ < kHeaderBytes) {
    return InvalidArgumentError("arena: file shorter than header");
  }
  if (std::memcmp(data_, kArenaMagic, sizeof(kArenaMagic)) != 0) {
    return InvalidArgumentError("arena: bad magic (not an arena snapshot)");
  }
  const uint32_t endian = LoadLittleU32(data_ + 8);
  if (endian != kArenaEndianWord) {
    return InvalidArgumentError(
        "arena: endian check word mismatch (foreign-endian writer?)");
  }
  const uint32_t version = LoadLittleU32(data_ + 12);
  if (version != kArenaVersion) {
    return InvalidArgumentError("arena: unsupported container version " +
                                std::to_string(version));
  }
  const uint32_t count = LoadLittleU32(data_ + 16);
  const size_t table_bytes = static_cast<size_t>(count) * kTableEntryBytes;
  if (count > (size_ - kHeaderBytes) / kTableEntryBytes) {
    return OutOfRangeError("arena: section table exceeds file");
  }
  sections_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const char* e = data_ + kHeaderBytes + i * kTableEntryBytes;
    Section s;
    s.id = LoadLittleU32(e);
    s.offset = LoadLittleU64(e + 8);
    s.bytes = LoadLittleU64(e + 16);
    if (s.offset % kArenaAlign != 0) {
      return InvalidArgumentError("arena: section " + std::to_string(s.id) +
                                  " payload misaligned");
    }
    if (s.offset < kHeaderBytes + table_bytes || s.offset > size_ ||
        s.bytes > size_ - s.offset) {
      return OutOfRangeError("arena: section " + std::to_string(s.id) +
                             " out of file bounds");
    }
    sections_.push_back(s);
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const MappedArena>> MappedArena::MapFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return NotFoundError("arena: cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return InternalError("arena: cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // mmap rejects zero-length maps; an empty file is simply not an arena.
  if (size == 0) {
    ::close(fd);
    return InvalidArgumentError("arena: " + path + " is empty");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (addr == MAP_FAILED) {
    return InternalError("arena: mmap failed for " + path);
  }
  std::shared_ptr<MappedArena> arena(new MappedArena());
  arena->data_ = static_cast<const char*>(addr);
  arena->size_ = size;
  arena->mapped_ = true;
  if (Status st_v = arena->Validate(); !st_v.ok()) return st_v;
  return std::shared_ptr<const MappedArena>(std::move(arena));
}

StatusOr<std::shared_ptr<const MappedArena>> MappedArena::FromBytes(
    std::string_view image) {
  std::shared_ptr<MappedArena> arena(new MappedArena());
  arena->owned_ = std::make_unique<char[]>(image.size() + 1);
  std::memcpy(arena->owned_.get(), image.data(), image.size());
  arena->data_ = arena->owned_.get();
  arena->size_ = image.size();
  if (Status st = arena->Validate(); !st.ok()) return st;
  return std::shared_ptr<const MappedArena>(std::move(arena));
}

MappedArena::~MappedArena() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

const MappedArena::Section* MappedArena::FindSection(uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const MappedArena::Section*> MappedArena::FindSections(
    uint32_t id) const {
  std::vector<const Section*> out;
  for (const Section& s : sections_) {
    if (s.id == id) out.push_back(&s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ArenaIndexBuilder

void ArenaIndexBuilder::Add(std::string key, std::string value) {
  entries_.emplace_back(std::move(key), std::move(value));
}

std::string ArenaIndexBuilder::Finish() {
  // Stable file bytes: entry order (and therefore slot contents) must not
  // depend on the hash-map iteration order the caller exported from.
  std::sort(entries_.begin(), entries_.end());

  uint64_t num_slots = 0;
  if (!entries_.empty()) {
    num_slots = 8;
    while (num_slots * 7 < entries_.size() * 10) num_slots *= 2;  // load<=0.7
  }

  // Entry blob + per-entry offsets.
  std::string blob;
  std::vector<uint64_t> offsets;
  offsets.reserve(entries_.size());
  for (const auto& [key, value] : entries_) {
    offsets.push_back(blob.size());
    AppendU32(blob, static_cast<uint32_t>(key.size()));
    AppendU32(blob, static_cast<uint32_t>(value.size()));
    blob.append(key);
    PadTo(blob, kArenaAlign);
    blob.append(value);
    PadTo(blob, kArenaAlign);
  }

  // Slot table: linear probing over a power-of-two array.
  std::vector<std::pair<uint64_t, uint64_t>> slots(
      num_slots, {0, kEmptySlotOffset});
  for (size_t i = 0; i < entries_.size(); ++i) {
    const uint64_t h = StableHash64(entries_[i].first);
    uint64_t slot = h & (num_slots - 1);
    while (slots[slot].second != kEmptySlotOffset) {
      slot = (slot + 1) & (num_slots - 1);
    }
    slots[slot] = {h, offsets[i]};
  }

  std::string out;
  AppendU64(out, entries_.size());
  AppendU64(out, num_slots);
  AppendU64(out, blob.size());
  for (const auto& [hash, offset] : slots) {
    AppendU64(out, hash);
    AppendU64(out, offset);
  }
  out.append(blob);
  entries_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// MappedIndex

StatusOr<MappedIndex> MappedIndex::Attach(std::string_view payload) {
  MappedIndex index;
  if (payload.size() < 24) {
    return OutOfRangeError("arena index: payload shorter than header");
  }
  index.payload_ = payload;
  index.num_entries_ = LoadLittleU64(payload.data());
  index.num_slots_ = LoadLittleU64(payload.data() + 8);
  index.entries_bytes_ = LoadLittleU64(payload.data() + 16);
  if (index.num_slots_ != 0 &&
      (index.num_slots_ & (index.num_slots_ - 1)) != 0) {
    return InvalidArgumentError("arena index: slot count not a power of two");
  }
  if (index.num_entries_ != 0 && index.num_slots_ == 0) {
    return InvalidArgumentError("arena index: entries without slots");
  }
  if (index.num_slots_ > (payload.size() - 24) / 16) {
    return OutOfRangeError("arena index: slot table exceeds payload");
  }
  index.slots_offset_ = 24;
  index.entries_offset_ = 24 + static_cast<size_t>(index.num_slots_) * 16;
  if (index.entries_bytes_ > payload.size() - index.entries_offset_) {
    return OutOfRangeError("arena index: entry blob exceeds payload");
  }
  return index;
}

StatusOr<std::string_view> MappedIndex::Find(std::string_view key) const {
  if (num_slots_ == 0) return NotFoundError("arena index: empty");
  const uint64_t h = StableHash64(key);
  const uint64_t mask = num_slots_ - 1;
  for (uint64_t probe = 0; probe <= mask; ++probe) {
    const uint64_t slot = (h + probe) & mask;
    const char* sp = payload_.data() + slots_offset_ + slot * 16;
    const uint64_t slot_hash = LoadLittleU64(sp);
    const uint64_t entry_offset = LoadLittleU64(sp + 8);
    if (entry_offset == kEmptySlotOffset) {
      return NotFoundError("arena index: key absent");
    }
    if (slot_hash != h) continue;
    // Bounds-check the record before touching it: a corrupted offset must
    // come back as a Status, never a wild read.
    if (entry_offset % kArenaAlign != 0 || entry_offset >= entries_bytes_ ||
        entries_bytes_ - entry_offset < 8) {
      return OutOfRangeError("arena index: slot offset out of range");
    }
    const char* e = payload_.data() + entries_offset_ + entry_offset;
    const uint32_t key_bytes = LoadLittleU32(e);
    const uint32_t value_bytes = LoadLittleU32(e + 4);
    const uint64_t key_end = entry_offset + 8 + uint64_t{key_bytes};
    const uint64_t value_start =
        AlignUp(static_cast<size_t>(key_end), kArenaAlign);
    if (key_end > entries_bytes_ ||
        value_start + uint64_t{value_bytes} > entries_bytes_) {
      return OutOfRangeError("arena index: entry record out of range");
    }
    if (std::string_view(e + 8, key_bytes) != key) continue;
    return std::string_view(
        payload_.data() + entries_offset_ + value_start, value_bytes);
  }
  return OutOfRangeError("arena index: probe wrapped (corrupt slot table)");
}

Status MappedIndex::Visit(
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  uint64_t offset = 0;
  uint64_t seen = 0;
  while (offset < entries_bytes_) {
    if (offset % kArenaAlign != 0 || offset + 8 > entries_bytes_) {
      return OutOfRangeError("arena index: truncated entry record");
    }
    const char* e = payload_.data() + entries_offset_ + offset;
    const uint32_t key_bytes = LoadLittleU32(e);
    const uint32_t value_bytes = LoadLittleU32(e + 4);
    const uint64_t key_end = offset + 8 + uint64_t{key_bytes};
    const uint64_t value_start =
        AlignUp(static_cast<size_t>(key_end), kArenaAlign);
    const uint64_t value_end = value_start + uint64_t{value_bytes};
    if (key_end > entries_bytes_ || value_end > entries_bytes_) {
      return OutOfRangeError("arena index: entry record out of range");
    }
    fn(std::string_view(e + 8, key_bytes),
       std::string_view(payload_.data() + entries_offset_ + value_start,
                        value_bytes));
    offset = AlignUp(static_cast<size_t>(value_end), kArenaAlign);
    ++seen;
    if (seen > num_entries_) {
      return InvalidArgumentError("arena index: more records than declared");
    }
  }
  if (seen != num_entries_) {
    return InvalidArgumentError("arena index: fewer records than declared");
  }
  return Status::OK();
}

}  // namespace cegraph::util
