#include "util/random.h"

#include <cmath>
#include <cstdlib>

namespace cegraph::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Debiased modulo via rejection on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfDistribution dist(n, s);
  return dist.Sample(*this);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) {
  cdf_.resize(n);
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(uint64_t k) const {
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace cegraph::util
