#ifndef CEGRAPH_UTIL_SERDE_H_
#define CEGRAPH_UTIL_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cegraph::util::serde {

/// Append-only little-endian binary encoder. The byte order is fixed (not
/// host order) so snapshots written on one machine load on any other; every
/// multi-byte value is composed bytewise, which also side-steps alignment.
///
/// The writer owns a growing byte buffer; call `buffer()` / `TakeBuffer()`
/// to get the encoded bytes. Writing cannot fail (allocation aside), so the
/// API is plain void — all error handling lives on the Reader side.
class Writer {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  /// Doubles travel as their IEEE-754 bit pattern, so a value round-trips
  /// bit-identically (the snapshot acceptance criterion).
  void WriteDouble(double v);
  /// Length-prefixed (u64) byte string.
  void WriteString(std::string_view s);
  /// Raw bytes, no length prefix (for magic numbers / nested payloads).
  void WriteRaw(std::string_view bytes);

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range. Every
/// read returns OutOfRange once the input is exhausted or a length prefix
/// points past the end, so a truncated or corrupted snapshot is rejected
/// with a clean Status instead of reading garbage. The underlying bytes
/// must outlive the reader.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  util::StatusOr<uint8_t> ReadU8();
  util::StatusOr<uint32_t> ReadU32();
  util::StatusOr<uint64_t> ReadU64();
  util::StatusOr<double> ReadDouble();
  /// Length-prefixed string; fails if the prefix exceeds the remaining
  /// bytes (the usual corruption signature).
  util::StatusOr<std::string> ReadString();
  /// Exactly `n` raw bytes.
  util::StatusOr<std::string> ReadRaw(size_t n);
  /// Advances past `n` bytes without materializing them.
  util::Status Skip(size_t n);

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  util::Status Require(size_t n) const;

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace cegraph::util::serde

#endif  // CEGRAPH_UTIL_SERDE_H_
