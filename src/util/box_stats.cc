#include "util/box_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cegraph::util {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

BoxStats ComputeBoxStats(std::vector<double> values) {
  BoxStats out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.count = values.size();
  out.min = values.front();
  out.max = values.back();
  out.p25 = Percentile(values, 25);
  out.median = Percentile(values, 50);
  out.p75 = Percentile(values, 75);
  double sum = 0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());

  // Trimmed mean: drop the top 10% by magnitude (the paper's convention for
  // reporting mean q-error without extreme outliers).
  std::sort(values.begin(), values.end(),
            [](double a, double b) { return std::fabs(a) < std::fabs(b); });
  const size_t keep =
      values.size() - values.size() / 10;  // floor(n*0.9) rounded up
  double tsum = 0;
  for (size_t i = 0; i < keep; ++i) tsum += values[i];
  out.trimmed_mean = keep == 0 ? 0 : tsum / static_cast<double>(keep);
  return out;
}

std::string BoxStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.3g p25=%.3g med=%.3g p75=%.3g max=%.3g "
                "mean=%.3g tmean=%.3g",
                count, min, p25, median, p75, max, mean, trimmed_mean);
  return buf;
}

}  // namespace cegraph::util
