#ifndef CEGRAPH_UTIL_STRINGS_H_
#define CEGRAPH_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cegraph::util {

/// Splits a comma-separated list into its non-empty items, in order —
/// the shape every `--estimators a,b,c` style CLI flag parses. No
/// trimming: names travel exactly as typed (registry names contain no
/// spaces).
std::vector<std::string> SplitCsv(std::string_view csv);

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_STRINGS_H_
