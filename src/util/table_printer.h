#ifndef CEGRAPH_UTIL_TABLE_PRINTER_H_
#define CEGRAPH_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cegraph::util {

/// Renders aligned text tables for the benchmark harnesses. All bench
/// binaries print their figure/table reproduction through this class so the
/// output format is uniform and diff-able (EXPERIMENTS.md records it).
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.4g.
  static std::string Num(double v);

  /// Writes the table, padded with two-space gutters, to `os`.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV (no padding) to `os`.
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_TABLE_PRINTER_H_
