#ifndef CEGRAPH_UTIL_ARENA_H_
#define CEGRAPH_UTIL_ARENA_H_

/// The mmap-able arena container behind snapshot format v3 (see
/// docs/snapshot_format.md): a flat file of 8-byte-aligned sections whose
/// payloads are usable *in place* after mmap — fixed little-endian words,
/// offset-based (never pointer-based) references, and per-section
/// open-addressed hash indexes written at build time. A restarting server
/// maps the file and serves lookups straight off the page cache; nothing is
/// parsed up front.
///
/// Layout (all integers little-endian, all offsets relative to file start):
///
///   bytes 0..7    magic "CEGARNA1"
///   u32           endian check word 0x01020304 (reads back 0x04030201 on a
///                 foreign-endian writer — rejected cleanly at open)
///   u32           arena container version (kArenaVersion)
///   u32           section count
///   u32           reserved (0)
///   section table: count x { u32 id, u32 reserved, u64 offset, u64 bytes }
///   payloads, each starting at an 8-byte-aligned offset, zero-padded
///
/// The reader (`MappedArena`) validates the header and every table entry at
/// open — magic, endianness, version, alignment, and that each section lies
/// inside the file — so later in-place accesses can trust section bounds.
/// Per-access offsets *inside* a section (hash-index slots, entry records)
/// are still bounds-checked at use: a corrupted index degrades to a clean
/// Status error (or a recompute, on no-Status call paths), never UB.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cegraph::util {

inline constexpr char kArenaMagic[8] = {'C', 'E', 'G', 'A', 'R', 'N', 'A', '1'};
inline constexpr uint32_t kArenaEndianWord = 0x01020304u;
inline constexpr uint32_t kArenaVersion = 1;
inline constexpr size_t kArenaAlign = 8;

/// Little-endian word loads over mapped bytes. Bytewise composition keeps
/// them correct on any host endianness and UBSan-clean at any alignment
/// (compilers fold them to single loads on little-endian targets).
inline uint32_t LoadLittleU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return uint32_t{b[0]} | uint32_t{b[1]} << 8 | uint32_t{b[2]} << 16 |
         uint32_t{b[3]} << 24;
}

inline uint64_t LoadLittleU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | b[i];
  return v;
}

/// Builds an arena file image in memory: append sections, then `Finish()`.
/// Section payloads are padded so every payload starts 8-byte aligned.
class ArenaBuilder {
 public:
  /// Appends one section. Ids need not be unique in the container format,
  /// but snapshot v3 readers look sections up by id and use the *first*
  /// match except where the format explicitly allows repeats (Markov
  /// tables carry one section per history length).
  void AddSection(uint32_t id, std::string payload);

  /// Serializes header + table + payloads. The builder is consumed.
  std::string Finish();

  size_t section_count() const { return sections_.size(); }

 private:
  std::vector<std::pair<uint32_t, std::string>> sections_;
};

/// A validated, read-only view of an arena image: either an mmap'd file
/// (unmapped on destruction) or an owned aligned byte buffer. Stats
/// structures that serve off mapped sections keep the arena alive through a
/// shared_ptr, so a hot-swap can drop the old mapping only once the last
/// reader is gone.
class MappedArena {
 public:
  struct Section {
    uint32_t id = 0;
    uint64_t offset = 0;  ///< absolute offset of the payload in the image
    uint64_t bytes = 0;
  };

  /// mmap's `path` read-only and validates the header/table.
  static StatusOr<std::shared_ptr<const MappedArena>> MapFile(
      const std::string& path);

  /// Wraps an in-memory image (copied into an aligned owned buffer) — for
  /// shard loads that already read the bytes to verify manifest hashes, and
  /// for corruption tests that mutate images byte-by-byte.
  static StatusOr<std::shared_ptr<const MappedArena>> FromBytes(
      std::string_view image);

  ~MappedArena();
  MappedArena(const MappedArena&) = delete;
  MappedArena& operator=(const MappedArena&) = delete;

  std::string_view bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }
  bool mapped_from_file() const { return mapped_; }

  const std::vector<Section>& sections() const { return sections_; }

  /// First section with `id`, or null.
  const Section* FindSection(uint32_t id) const;

  /// All sections with `id`, in file order (Markov history sections).
  std::vector<const Section*> FindSections(uint32_t id) const;

  /// The payload bytes of `s`. Bounds were validated at open.
  std::string_view SectionBytes(const Section& s) const {
    return {data_ + s.offset, s.bytes};
  }

 private:
  MappedArena() = default;

  /// Header/table validation shared by both open paths.
  Status Validate();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;           ///< true: munmap in dtor
  std::unique_ptr<char[]> owned_; ///< FromBytes backing store
  std::vector<Section> sections_;
};

/// Builds the open-addressed hash index payload used by every keyed arena
/// section. Entries are deduplicated-by-caller key/value byte strings;
/// `Finish()` sorts them (stable file bytes independent of insertion
/// order), sizes a power-of-two slot array at <=70% load, and emits:
///
///   u64 num_entries
///   u64 num_slots            (power of two; 0 when the index is empty)
///   u64 entries_bytes
///   slots: num_slots x { u64 hash, u64 entry_offset }   (offset into the
///          entry blob; kEmptySlotOffset marks an empty slot)
///   entry blob: entries_bytes bytes of 8-aligned records
///          { u32 key_bytes, u32 value_bytes, key (padded to 8),
///            value (padded to 8) }
///
/// Hashes are util::StableHash64 over the key bytes — the same function the
/// sharding layer pins forever — so an index probe and a shard-membership
/// test agree on every key.
class ArenaIndexBuilder {
 public:
  void Add(std::string key, std::string value);
  size_t size() const { return entries_.size(); }
  std::string Finish();

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline constexpr uint64_t kEmptySlotOffset = ~uint64_t{0};

/// Read side of ArenaIndexBuilder: probes the mapped payload in place.
/// Every offset the probe touches is bounds-checked against the section, so
/// corrupted slot tables surface as OutOfRange/InvalidArgument, not UB.
class MappedIndex {
 public:
  MappedIndex() = default;

  /// Validates the fixed header (counts vs payload size, power-of-two slot
  /// array). Entry records are checked lazily, per probe.
  static StatusOr<MappedIndex> Attach(std::string_view payload);

  uint64_t num_entries() const { return num_entries_; }

  /// Value bytes for `key`; NotFound on a clean miss, OutOfRange /
  /// InvalidArgument when the index bytes are corrupt. The returned view
  /// borrows the mapped payload.
  StatusOr<std::string_view> Find(std::string_view key) const;

  /// Sequential walk of the entry blob (materialize-all for stale loads,
  /// cross-format verification). Stops with an error on a malformed record.
  Status Visit(
      const std::function<void(std::string_view key, std::string_view value)>&
          fn) const;

 private:
  std::string_view payload_;
  uint64_t num_entries_ = 0;
  uint64_t num_slots_ = 0;
  uint64_t entries_bytes_ = 0;
  size_t slots_offset_ = 0;
  size_t entries_offset_ = 0;
};

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_ARENA_H_
