#include "util/serde.h"

#include <cstring>

namespace cegraph::util::serde {

void Writer::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::WriteDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Writer::WriteString(std::string_view s) {
  WriteU64(s.size());
  buffer_.append(s.data(), s.size());
}

void Writer::WriteRaw(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

util::Status Reader::Require(size_t n) const {
  if (bytes_.size() - pos_ < n) {
    return util::OutOfRangeError(
        "truncated input: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " +
        std::to_string(bytes_.size() - pos_));
  }
  return util::Status::OK();
}

util::StatusOr<uint8_t> Reader::ReadU8() {
  CEGRAPH_RETURN_IF_ERROR(Require(1));
  return static_cast<uint8_t>(bytes_[pos_++]);
}

util::StatusOr<uint32_t> Reader::ReadU32() {
  CEGRAPH_RETURN_IF_ERROR(Require(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

util::StatusOr<uint64_t> Reader::ReadU64() {
  CEGRAPH_RETURN_IF_ERROR(Require(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

util::StatusOr<double> Reader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double v = 0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

util::StatusOr<std::string> Reader::ReadString() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  return ReadRaw(static_cast<size_t>(*n));
}

util::StatusOr<std::string> Reader::ReadRaw(size_t n) {
  CEGRAPH_RETURN_IF_ERROR(Require(n));
  std::string out(bytes_.substr(pos_, n));
  pos_ += n;
  return out;
}

util::Status Reader::Skip(size_t n) {
  CEGRAPH_RETURN_IF_ERROR(Require(n));
  pos_ += n;
  return util::Status::OK();
}

}  // namespace cegraph::util::serde
