#include "util/strings.h"

namespace cegraph::util {

std::vector<std::string> SplitCsv(std::string_view csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string_view::npos ? csv.size() : comma;
    if (end > start) out.emplace_back(csv.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace cegraph::util
