#ifndef CEGRAPH_UTIL_RANDOM_H_
#define CEGRAPH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cegraph::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (dataset generators, workload
/// instantiation, cycle-closing-rate walks, WanderJoin, bound-sketch hashing
/// of experiments) takes an explicit `Rng` or seed so that experiments are
/// exactly reproducible across runs and platforms. We deliberately avoid
/// std::mt19937 + std::uniform_int_distribution because distribution output
/// is not specified portably by the standard.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 42);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns an index in [0, weights.size()) chosen proportionally to
  /// `weights` (non-negative; at least one must be positive).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Returns a Zipfian-distributed value in [0, n) with exponent `s`.
  /// Computed by inversion over the precomputable harmonic CDF is too
  /// expensive for large n, so this uses rejection-inversion is overkill;
  /// we use the simple CDF-free approximation of sampling u^( -1/(s-1) )
  /// only when s>1, otherwise a linear-scan CDF for small n. For the sizes
  /// used here (n <= a few hundred for labels), a cached CDF is used by
  /// ZipfDistribution below; this helper is for one-off draws.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t state_[4];
};

/// Precomputed Zipf(n, s) sampler over ranks {0, ..., n-1}; rank 0 is the
/// most frequent. Sampling is O(log n) via binary search on the CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank `k`.
  double Pmf(uint64_t k) const;

 private:
  std::vector<double> cdf_;
};

/// 64-bit mix hash (SplitMix64 finalizer); used for bound-sketch
/// partition hashing so that partitions are deterministic.
uint64_t MixHash(uint64_t x);

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_RANDOM_H_
