#ifndef CEGRAPH_UTIL_KEYED_CACHE_H_
#define CEGRAPH_UTIL_KEYED_CACHE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace cegraph::util {

/// Lookup/maintenance counters of one KeyedCache: Find hits and misses
/// (GetOrCompute goes through Find, so misses count cold computes) and
/// entries removed by EraseIf (the dynamic layer's targeted invalidation).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// The one memo-cache shape shared by every statistics structure in this
/// library: a mutex-guarded unordered_map with check-compute-insert
/// semantics, where values are computed *outside* the lock (expensive exact
/// matching / sampling must not serialize other readers) and the first
/// completed insert wins.
///
/// Entries are only ever removed by EraseIf, which exists for the dynamic
/// layer's targeted invalidation (stats maintenance after a graph delta).
/// Outside maintenance windows the cache is append-only, so returned
/// references stay valid (unordered_map node stability); maintenance must
/// run quiesced — no concurrent estimation holding entry references — which
/// is the same contract the surrounding stats swap requires anyway.
///
/// This replaces the hand-rolled mutex+map pair that used to be duplicated
/// across MarkovTable, CycleClosingRates, StatsCatalog (twice),
/// DispersionCatalog and friends, and is what gives all of them a uniform
/// ExportEntries/ImportEntries surface for snapshot serialization.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class KeyedCache {
 public:
  KeyedCache() = default;
  KeyedCache(const KeyedCache&) = delete;
  KeyedCache& operator=(const KeyedCache&) = delete;

  /// Returns the cached value for `key`, or nullptr. The pointer stays
  /// valid as long as the entry lives (no erasure outside maintenance).
  const Value* Find(const Key& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++counters_.misses;
      return nullptr;
    }
    ++counters_.hits;
    return &it->second;
  }

  /// Inserts `value` under `key` unless present; returns the resident
  /// value either way (first insert wins on a race).
  const Value& Insert(const Key& key, Value value) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.try_emplace(key, std::move(value)).first->second;
  }

  /// Inserts or overwrites the value under `key` — the exact in-place
  /// update path of incremental stats maintenance (e.g. refreshing a
  /// base-relation degree map after an edge delta).
  const Value& Upsert(const Key& key, Value value) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.insert_or_assign(key, std::move(value)).first->second;
  }

  /// The value for `key`, computing it with `compute()` outside the lock
  /// on a miss. Two threads racing on a cold key may both compute; the
  /// first insert wins (all compute functions here are deterministic, so
  /// the loser's value is identical).
  template <typename Fn>
  const Value& GetOrCompute(const Key& key, Fn&& compute) const {
    if (const Value* hit = Find(key)) return *hit;
    return Insert(key, compute());
  }

  /// Removes every entry for which `pred(key, value)` is true and returns
  /// how many were removed — the targeted-invalidation path of the dynamic
  /// layer. Invalidates references to the removed entries only; must run
  /// quiesced (see class comment).
  template <typename Pred>
  size_t EraseIf(Pred&& pred) const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t erased = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first, it->second)) {
        it = map_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    counters_.evictions += erased;
    return erased;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  /// Bucket count of the underlying map (for resident-size accounting).
  size_t bucket_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.bucket_count();
  }

  /// Lookup/eviction counters since construction.
  CacheCounters counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

  /// Calls `fn(key, value)` for every entry, under the lock — the uniform
  /// export path. `fn` must not re-enter the cache.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, value] : map_) fn(key, value);
  }

 private:
  mutable std::mutex mutex_;
  mutable std::unordered_map<Key, Value, Hash> map_;
  mutable CacheCounters counters_;
};

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_KEYED_CACHE_H_
