#ifndef CEGRAPH_UTIL_KEYED_CACHE_H_
#define CEGRAPH_UTIL_KEYED_CACHE_H_

#include <mutex>
#include <unordered_map>
#include <utility>

namespace cegraph::util {

/// The one memo-cache shape shared by every statistics structure in this
/// library: a mutex-guarded unordered_map with check-compute-insert
/// semantics, where values are computed *outside* the lock (expensive exact
/// matching / sampling must not serialize other readers) and the first
/// completed insert wins. Entries are never erased, so returned references
/// stay valid for the cache's lifetime (unordered_map node stability).
///
/// This replaces the hand-rolled mutex+map pair that used to be duplicated
/// across MarkovTable, CycleClosingRates, StatsCatalog (twice),
/// DispersionCatalog and friends, and is what gives all of them a uniform
/// ExportEntries/ImportEntries surface for snapshot serialization.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class KeyedCache {
 public:
  KeyedCache() = default;
  KeyedCache(const KeyedCache&) = delete;
  KeyedCache& operator=(const KeyedCache&) = delete;

  /// Returns the cached value for `key`, or nullptr. The pointer stays
  /// valid as long as the cache lives (no erasure).
  const Value* Find(const Key& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Inserts `value` under `key` unless present; returns the resident
  /// value either way (first insert wins on a race).
  const Value& Insert(const Key& key, Value value) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.try_emplace(key, std::move(value)).first->second;
  }

  /// The value for `key`, computing it with `compute()` outside the lock
  /// on a miss. Two threads racing on a cold key may both compute; the
  /// first insert wins (all compute functions here are deterministic, so
  /// the loser's value is identical).
  template <typename Fn>
  const Value& GetOrCompute(const Key& key, Fn&& compute) const {
    if (const Value* hit = Find(key)) return *hit;
    return Insert(key, compute());
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

  /// Bucket count of the underlying map (for resident-size accounting).
  size_t bucket_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.bucket_count();
  }

  /// Calls `fn(key, value)` for every entry, under the lock — the uniform
  /// export path. `fn` must not re-enter the cache.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, value] : map_) fn(key, value);
  }

 private:
  mutable std::mutex mutex_;
  mutable std::unordered_map<Key, Value, Hash> map_;
};

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_KEYED_CACHE_H_
