#ifndef CEGRAPH_UTIL_STATUS_H_
#define CEGRAPH_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace cegraph::util {

/// Canonical error categories, a small subset of the absl/gRPC code space
/// that is sufficient for this library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
};

/// Returns a human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, used instead of exceptions across
/// all public APIs (see DESIGN.md §8). Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);

/// A value-or-error result. Holds either a `T` or a non-OK `Status`.
/// Access to `value()` on an error aborts the process: this library treats
/// unchecked error access as a programming bug, matching the behaviour of
/// absl::StatusOr in hardened builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr).
  StatusOr(T value) : rep_(std::move(value)) {}
  /// Constructs from a non-OK status. Aborts if `status.ok()`.
  StatusOr(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) Crash("StatusOr constructed from OK");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    if (!ok()) Crash(std::get<Status>(rep_).ToString());
    return std::get<T>(rep_);
  }
  T& value() & {
    if (!ok()) Crash(std::get<Status>(rep_).ToString());
    return std::get<T>(rep_);
  }
  T&& value() && {
    if (!ok()) Crash(std::get<Status>(rep_).ToString());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  [[noreturn]] static void Crash(const std::string& what);

  std::variant<T, Status> rep_;
};

namespace internal {
[[noreturn]] void StatusOrCrash(const std::string& what);
}  // namespace internal

template <typename T>
void StatusOr<T>::Crash(const std::string& what) {
  internal::StatusOrCrash(what);
}

/// Evaluates `expr` (a Status-returning expression) and returns it from the
/// enclosing function if it is not OK.
#define CEGRAPH_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::cegraph::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace cegraph::util

#endif  // CEGRAPH_UTIL_STATUS_H_
