#ifndef CEGRAPH_ESTIMATORS_ORACLE_H_
#define CEGRAPH_ESTIMATORS_ORACLE_H_

#include "ceg/ceg.h"
#include "util/status.h"

namespace cegraph {

/// The P* oracle of §6.2.3: among every (∅, Q) path of a CEG, the estimate
/// of the path whose q-error against the true cardinality is smallest.
/// P* measures the headroom left in a CEG for better path-picking
/// heuristics; it is not a deployable estimator (it needs the truth).
///
/// Paths are enumerated explicitly up to `max_paths`; if the cap is hit the
/// result is a lower bound on the oracle's quality (reported via
/// `truncated`). The cap matters only for extremely path-rich CEGs (e.g.
/// 12-edge stars); the paper's 6-8-edge workloads enumerate fully.
util::StatusOr<double> PStarEstimate(const ceg::Ceg& ceg,
                                     double true_cardinality,
                                     size_t max_paths = 2'000'000,
                                     bool* truncated = nullptr);

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_ORACLE_H_
