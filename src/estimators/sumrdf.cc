#include "estimators/sumrdf.h"

#include <vector>

namespace cegraph {

namespace {

using query::QueryEdge;
using query::QueryGraph;
using query::QVertex;

constexpr uint32_t kUnassigned = 0xFFFFFFFF;

/// The SumRDF expected-cardinality semantics: summed over summary
/// embeddings sigma,
///   prod_edges w(sigma(u), l, sigma(v)) / (s_u * s_v) * prod_vertices s_v.
/// Exactly like exact counting, this factorizes over pendant trees, so we
/// peel degree-1 query vertices with a bucket-indexed DP and only search
/// over the cyclic core. The DP makes SumRDF linear-time on acyclic
/// queries (which is what lets it answer the paper's acyclic workloads at
/// all); dense cyclic cores can still blow up and hit the step budget —
/// the analogue of SumRDF's timeouts in §6.4.
struct PeelStep {
  uint32_t edge_index;
  QVertex removed;
  QVertex anchor;
};

std::vector<PeelStep> PeelPendantTrees(const QueryGraph& q,
                                       query::EdgeSet* core_edges) {
  const uint32_t m = q.num_edges();
  std::vector<bool> edge_live(m, true);
  std::vector<int> degree(q.num_vertices(), 0);
  for (uint32_t i = 0; i < m; ++i) {
    const QueryEdge& e = q.edge(i);
    if (e.src == e.dst) continue;
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::vector<PeelStep> steps;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (QVertex v = 0; v < q.num_vertices(); ++v) {
      if (degree[v] != 1) continue;
      for (uint32_t ei : q.IncidentEdges(v)) {
        if (!edge_live[ei]) continue;
        const QueryEdge& e = q.edge(ei);
        if (e.src == e.dst) continue;
        const QVertex other = e.src == v ? e.dst : e.src;
        edge_live[ei] = false;
        --degree[v];
        --degree[other];
        steps.push_back({ei, v, other});
        progressed = true;
        break;
      }
    }
  }
  query::EdgeSet core = 0;
  for (uint32_t i = 0; i < m; ++i) {
    if (edge_live[i]) core |= query::EdgeSet{1} << i;
  }
  *core_edges = core;
  return steps;
}

class SumRdfComputation {
 public:
  SumRdfComputation(const stats::SummaryGraph& summary, const QueryGraph& q,
                    uint64_t budget)
      : summary_(summary), q_(q), budget_(budget) {}

  util::StatusOr<double> Run() {
    query::EdgeSet core = 0;
    const std::vector<PeelStep> peel = PeelPendantTrees(q_, &core);
    weights_.assign(q_.num_vertices(), {});
    for (const PeelStep& step : peel) {
      CEGRAPH_RETURN_IF_ERROR(ApplyPeelStep(step));
    }

    if (core == 0) {
      // Pure tree: close out at the final anchor, folding its bucket-size
      // vertex factor.
      const QVertex root = peel.back().anchor;
      double total = 0;
      for (uint32_t b = 0; b < summary_.num_buckets(); ++b) {
        total += static_cast<double>(summary_.bucket_size(b)) *
                 Weight(root, b);
      }
      return total;
    }

    // Backtracking over the core in a connected edge order.
    for (uint32_t i = 0; i < q_.num_edges(); ++i) {
      if (core & (query::EdgeSet{1} << i)) core_order_.push_back(i);
    }
    OrderCoreEdges();
    assignment_.assign(q_.num_vertices(), kUnassigned);
    total_ = 0;
    CEGRAPH_RETURN_IF_ERROR(Search(0, 1.0));
    return total_;
  }

 private:
  double Weight(QVertex u, uint32_t bucket) const {
    return weights_[u].empty() ? 1.0 : weights_[u][bucket];
  }

  std::vector<double>& MutableWeight(QVertex u) {
    if (weights_[u].empty()) {
      weights_[u].assign(summary_.num_buckets(), 1.0);
    }
    return weights_[u];
  }

  /// w_anchor[b] *= sum_{b'} w_edge(b ~ b') / s_b * w_removed[b'];
  /// the removed vertex's own bucket-size factor cancels one denominator.
  util::Status ApplyPeelStep(const PeelStep& step) {
    const QueryEdge& e = q_.edge(step.edge_index);
    const bool removed_is_src = (e.src == step.removed);
    std::vector<double>& anchor_w = MutableWeight(step.anchor);
    for (uint32_t b = 0; b < summary_.num_buckets(); ++b) {
      if (++steps_ > budget_) {
        return util::ResourceExhaustedError("sumrdf step budget exceeded");
      }
      if (summary_.bucket_size(b) == 0) {
        anchor_w[b] = 0;  // empty bucket: no vertex can map here
        continue;
      }
      double sum = 0;
      const auto& supers = removed_is_src ? summary_.InEdges(b, e.label)
                                          : summary_.OutEdges(b, e.label);
      for (const auto& [b2, w] : supers) {
        sum += w * Weight(step.removed, b2);
      }
      anchor_w[b] *= sum / static_cast<double>(summary_.bucket_size(b));
    }
    return util::Status::OK();
  }

  void OrderCoreEdges() {
    // Reorder core edges so each is connected to the prefix.
    std::vector<uint32_t> order;
    std::vector<bool> used(core_order_.size(), false);
    uint32_t bound = 0;
    order.push_back(core_order_[0]);
    used[0] = true;
    bound |= (1u << q_.edge(core_order_[0]).src) |
             (1u << q_.edge(core_order_[0]).dst);
    while (order.size() < core_order_.size()) {
      for (size_t i = 0; i < core_order_.size(); ++i) {
        if (used[i]) continue;
        const QueryEdge& e = q_.edge(core_order_[i]);
        if ((bound & (1u << e.src)) || (bound & (1u << e.dst))) {
          used[i] = true;
          order.push_back(core_order_[i]);
          bound |= (1u << e.src) | (1u << e.dst);
          break;
        }
      }
    }
    core_order_ = std::move(order);
  }

  util::Status Search(size_t depth, double weight) {
    if (++steps_ > budget_) {
      return util::ResourceExhaustedError("sumrdf step budget exceeded");
    }
    if (depth == core_order_.size()) {
      total_ += weight;
      return util::Status::OK();
    }
    const QueryEdge& e = q_.edge(core_order_[depth]);
    const bool sb = assignment_[e.src] != kUnassigned;
    const bool db = assignment_[e.dst] != kUnassigned;

    if (sb && db) {
      const double w =
          summary_.EdgeWeight(assignment_[e.src], e.label,
                              assignment_[e.dst]);
      if (w <= 0) return util::Status::OK();
      const double factor =
          w /
          (static_cast<double>(summary_.bucket_size(assignment_[e.src])) *
           static_cast<double>(summary_.bucket_size(assignment_[e.dst])));
      return Search(depth + 1, weight * factor);
    }

    if (!sb && !db) {
      // Seed: per-superedge contribution w, times pendant weights of the
      // two newly bound vertices (their s factors cancel).
      for (uint32_t b1 = 0; b1 < summary_.num_buckets(); ++b1) {
        for (const auto& [b2, w] : summary_.OutEdges(b1, e.label)) {
          if (e.src == e.dst && b1 != b2) continue;
          assignment_[e.src] = b1;
          assignment_[e.dst] = b2;
          double contribution = weight * w * Weight(e.src, b1);
          if (e.dst != e.src) contribution *= Weight(e.dst, b2);
          CEGRAPH_RETURN_IF_ERROR(Search(depth + 1, contribution));
          assignment_[e.src] = kUnassigned;
          assignment_[e.dst] = kUnassigned;
        }
      }
      return util::Status::OK();
    }

    const uint32_t anchor = sb ? assignment_[e.src] : assignment_[e.dst];
    const auto& supers = sb ? summary_.OutEdges(anchor, e.label)
                            : summary_.InEdges(anchor, e.label);
    const QVertex nv = sb ? e.dst : e.src;
    for (const auto& [b2, w] : supers) {
      const double factor =
          w / static_cast<double>(summary_.bucket_size(anchor)) *
          Weight(nv, b2);
      assignment_[nv] = b2;
      CEGRAPH_RETURN_IF_ERROR(Search(depth + 1, weight * factor));
      assignment_[nv] = kUnassigned;
    }
    return util::Status::OK();
  }

  const stats::SummaryGraph& summary_;
  const QueryGraph& q_;
  uint64_t budget_;
  uint64_t steps_ = 0;
  std::vector<std::vector<double>> weights_;  // pendant-tree DP, per bucket
  std::vector<uint32_t> core_order_;
  std::vector<uint32_t> assignment_;
  double total_ = 0;
};

}  // namespace

util::StatusOr<double> SumRdfEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  SumRdfComputation computation(summary_, q, step_budget_);
  return computation.Run();
}

}  // namespace cegraph
