#ifndef CEGRAPH_ESTIMATORS_PESSIMISTIC_H_
#define CEGRAPH_ESTIMATORS_PESSIMISTIC_H_

#include <vector>

#include "ceg/ceg_d.h"
#include "ceg/ceg_m.h"
#include "estimators/estimator.h"
#include "stats/degree_stats.h"

namespace cegraph {

/// The MOLP pessimistic estimator (§5.1, Joglekar & Ré [9]): the optimal
/// value of the MOLP linear program, computed combinatorially as the
/// minimum-weight (∅, A) path of CEG_M (Theorem 5.1) via Dijkstra on the
/// implicit lattice. 2^molp is a guaranteed upper bound on |Q|
/// (Proposition 5.1).
class MolpEstimator : public CardinalityEstimator {
 public:
  /// `include_two_joins` adds the degree statistics of 2-edge join results
  /// (§5.1.1) so MOLP's statistics strictly contain the optimistic
  /// estimators' (the paper's Fig. 13 configuration).
  MolpEstimator(const stats::StatsCatalog& catalog, bool include_two_joins)
      : catalog_(catalog), include_two_joins_(include_two_joins) {}

  std::string name() const override {
    return include_two_joins_ ? "molp+2j" : "molp";
  }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const stats::StatsCatalog& catalog_;
  bool include_two_joins_;
};

/// Solves the MOLP linear program *numerically* with the simplex solver —
/// the reference implementation used by tests to validate Theorem 5.1
/// against the combinatorial Dijkstra solution. Returns the optimum in
/// log2 domain. `include_projection_inequalities` toggles the s_X <= s_Y
/// constraints (Appendix A proves they are redundant).
util::StatusOr<double> MolpViaLp(const query::QueryGraph& q,
                                 const stats::DegreeStats& stats,
                                 bool include_projection_inequalities = true);

/// The CBS estimator of Cai et al. [5] (§5.2): the minimum over coverages
/// — assignments of 0, |A_i|-1 or |A_i| attributes to each relation whose
/// union covers all attributes — of the bounding-formula product
/// prod_i deg(uncovered_i, A_i, R_i). Computed by set-cover DP over the
/// attribute lattice (equivalent to enumerating BFG/FCG formulas).
/// Appendix B: equals MOLP on acyclic queries over binary relations;
/// Appendix C: may *under*estimate on cyclic queries.
class CbsEstimator : public CardinalityEstimator {
 public:
  explicit CbsEstimator(const stats::StatsCatalog& catalog)
      : catalog_(catalog) {}

  std::string name() const override { return "cbs"; }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const stats::StatsCatalog& catalog_;
};

/// The DBPLP bound (Appendix D) for one cover: the optimum of the covering
/// LP  min sum_a v_a  s.t.  sum_{a in A_j \ A'_j} v_a >= log deg(A'_j,
/// pi_{A_j} R_j). Returns log2 of the bound.
util::StatusOr<double> DbplpBoundForCover(const query::QueryGraph& q,
                                          const stats::DegreeStats& stats,
                                          const ceg::Cover& cover);

/// The best (smallest) DBPLP bound over all covers (log2 domain).
util::StatusOr<double> BestDbplpBound(const query::QueryGraph& q,
                                      const stats::DegreeStats& stats);

/// The AGM bound (Atserias-Grohe-Marx [4]): the fractional-edge-cover LP
/// min sum_i x_i log|R_i| s.t. each attribute covered with total weight
/// >= 1. Returns log2 of the bound.
util::StatusOr<double> AgmBound(const query::QueryGraph& q,
                                const stats::DegreeStats& stats);

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_PESSIMISTIC_H_
