#ifndef CEGRAPH_ESTIMATORS_CHARACTERISTIC_SETS_H_
#define CEGRAPH_ESTIMATORS_CHARACTERISTIC_SETS_H_

#include "estimators/estimator.h"
#include "stats/char_sets.h"

namespace cegraph {

/// The Characteristic Sets estimator (Neumann & Moerkotte [22], §6.4):
/// estimates out-star counts exactly from the CS summary; a non-star query
/// is decomposed into one out-star per query vertex with outgoing edges,
/// the star estimates are multiplied, and each variable shared between
/// stars contributes an independence correction of 1/|V| (every shared
/// occurrence is assumed to hit a uniformly random vertex). The paper
/// reports CS as the weakest baseline by orders of magnitude; this
/// decomposition reproduces its systematic underestimation on joins of
/// stars.
class CharacteristicSetsEstimator : public CardinalityEstimator {
 public:
  explicit CharacteristicSetsEstimator(const stats::CharacteristicSets& cs)
      : cs_(cs) {}

  std::string name() const override { return "cs"; }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const stats::CharacteristicSets& cs_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_CHARACTERISTIC_SETS_H_
