#include "estimators/bound_sketch.h"

#include <bit>
#include <cmath>
#include <string>
#include <vector>

#include "ceg/ceg_m.h"
#include "ceg/ceg_o.h"
#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "stats/degree_stats.h"
#include "stats/markov_table.h"
#include "util/random.h"

namespace cegraph {

namespace {

using graph::VertexId;
using query::QueryGraph;
using query::QVertex;
using query::VertexSet;

/// Join attributes: query vertices incident to >= 2 edges.
VertexSet JoinAttributes(const QueryGraph& q) {
  VertexSet s = 0;
  for (QVertex v = 0; v < q.num_vertices(); ++v) {
    if (q.Degree(v) >= 2) s |= VertexSet{1} << v;
  }
  return s;
}

}  // namespace

std::string BoundSketchEstimator::name() const {
  const std::string inner =
      inner_ == Inner::kOptimisticMaxHopMax ? "max-hop-max" : "molp";
  return "bs" + std::to_string(options_.budget_k) + "(" + inner + ")";
}

util::StatusOr<double> BoundSketchEstimator::InnerEstimate(
    const graph::Graph& g, const query::QueryGraph& q) const {
  if (inner_ == Inner::kOptimisticMaxHopMax) {
    stats::MarkovTable markov(g, options_.markov_h);
    OptimisticSpec spec;  // defaults: max-hop, max-aggr, CEG_O
    OptimisticEstimator estimator(markov, spec);
    return estimator.Estimate(q);
  }
  stats::StatsCatalog catalog(g);
  MolpEstimator estimator(catalog, options_.molp_two_joins);
  return estimator.Estimate(q);
}

util::StatusOr<VertexSet> BoundSketchEstimator::PartitionAttributes(
    const query::QueryGraph& q) const {
  const VertexSet join_attrs = JoinAttributes(q);
  VertexSet bound_ext_attrs = 0;

  if (inner_ == Inner::kOptimisticMaxHopMax) {
    stats::MarkovTable markov(g_, options_.markov_h);
    auto built = ceg::BuildCegO(q, markov);
    if (!built.ok()) return built.status();
    auto path = built->ceg.BestPath(ceg::Ceg::HopMode::kMaxHop,
                                    /*maximize=*/true);
    if (!path.ok()) return path.status();
    // Invert the node map to recover subsets along the path.
    std::vector<query::EdgeSet> subset_of_node(built->ceg.num_nodes(), 0);
    for (const auto& [subset, node] : built->node_of_subset) {
      subset_of_node[node] = subset;
    }
    for (size_t i = 0; i < path->edge_indices.size(); ++i) {
      const ceg::Ceg::Edge& e = built->ceg.edges()[path->edge_indices[i]];
      const VertexSet before = q.VerticesOf(subset_of_node[e.from]);
      const VertexSet after = q.VerticesOf(subset_of_node[e.to]);
      // The first hop (from the empty sub-query) is the unbound edge; all
      // later hops condition on the existing sub-query, i.e. are bound.
      if (i > 0) bound_ext_attrs |= after & ~before;
    }
  } else {
    stats::StatsCatalog catalog(g_);
    auto stats =
        stats::DegreeStats::Build(catalog, q, options_.molp_two_joins);
    if (!stats.ok()) return stats.status();
    auto path = ceg::MolpMinPath(q, *stats);
    if (!path.ok()) return path.status();
    for (const ceg::MolpPathStep& step : *path) {
      if (step.is_projection) continue;
      if (step.x != 0) bound_ext_attrs |= step.to & ~step.from;
    }
  }
  return join_attrs & ~bound_ext_attrs;
}

util::StatusOr<double> BoundSketchEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  if (AnyEmptyRelation(g_, q)) return 0.0;
  if (options_.budget_k <= 1) return InnerEstimate(g_, q);

  auto s_attrs = PartitionAttributes(q);
  if (!s_attrs.ok()) return s_attrs.status();
  const int z = std::popcount(*s_attrs);
  if (z == 0) return InnerEstimate(g_, q);

  const int buckets = std::max(
      1, static_cast<int>(std::floor(
             std::pow(static_cast<double>(options_.budget_k), 1.0 / z))));
  if (buckets <= 1) return InnerEstimate(g_, q);

  // Attribute order for combo digits.
  std::vector<QVertex> s_list;
  for (QVertex v = 0; v < q.num_vertices(); ++v) {
    if (*s_attrs & (VertexSet{1} << v)) s_list.push_back(v);
  }

  // The rewritten query gives each query edge its own relation (label =
  // edge index), since two edges sharing a data label can require
  // different partition filters.
  std::vector<query::QueryEdge> rewritten_edges = q.edges();
  for (uint32_t i = 0; i < rewritten_edges.size(); ++i) {
    rewritten_edges[i].label = i;
  }
  auto rewritten =
      QueryGraph::Create(q.num_vertices(), std::move(rewritten_edges));
  if (!rewritten.ok()) return rewritten.status();

  auto bucket_of = [&](VertexId v) {
    return static_cast<int>(util::MixHash(v) % buckets);
  };

  const int64_t num_combos =
      static_cast<int64_t>(std::pow(buckets, z) + 0.5);
  double total = 0;
  std::vector<int> digits(z, 0);
  for (int64_t combo = 0; combo < num_combos; ++combo) {
    {
      int64_t c = combo;
      for (int i = 0; i < z; ++i) {
        digits[i] = static_cast<int>(c % buckets);
        c /= buckets;
      }
    }
    // Build the partition graph for this combo.
    std::vector<graph::Edge> edges;
    for (uint32_t ei = 0; ei < q.num_edges(); ++ei) {
      const query::QueryEdge& qe = q.edge(ei);
      int src_bucket = -1, dst_bucket = -1;
      for (int i = 0; i < z; ++i) {
        if (s_list[i] == qe.src) src_bucket = digits[i];
        if (s_list[i] == qe.dst) dst_bucket = digits[i];
      }
      for (const graph::Edge& de : g_.RelationEdges(qe.label)) {
        if (src_bucket >= 0 && bucket_of(de.src) != src_bucket) continue;
        if (dst_bucket >= 0 && bucket_of(de.dst) != dst_bucket) continue;
        edges.push_back({de.src, de.dst, ei});
      }
    }
    auto part_graph =
        graph::Graph::Create(g_.num_vertices(), q.num_edges(),
                             std::move(edges));
    if (!part_graph.ok()) return part_graph.status();
    if (AnyEmptyRelation(*part_graph, *rewritten)) continue;  // estimate 0
    auto est = InnerEstimate(*part_graph, *rewritten);
    if (!est.ok()) return est.status();
    total += *est;
  }
  return total;
}

}  // namespace cegraph
