#ifndef CEGRAPH_ESTIMATORS_DISPERSION_PATH_H_
#define CEGRAPH_ESTIMATORS_DISPERSION_PATH_H_

#include "estimators/estimator.h"
#include "stats/dispersion.h"
#include "stats/markov_table.h"

namespace cegraph {

/// The estimator sketched as future work in the paper's §8: keep CEG_O's
/// average-degree weights as the *estimate*, but pick the path whose
/// extension steps have the most *regular* degree distributions — the
/// ones where the uniformity assumption is most defensible.
///
/// Path selection minimizes the summed per-edge irregularity cost:
///   kMinCv:      cost(edge) = log(1 + CV^2)   (log-additive variance
///                inflation: the second moment of a product of independent
///                steps multiplies by (1 + CV^2) per step)
///   kMinEntropy: cost(edge) = 1 - normalized extension entropy
/// Edges whose dispersion cannot be computed (too large to materialize)
/// get the neutral cost of the catalog-wide median, so they neither
/// attract nor repel the path.
class DispersionGuidedEstimator : public CardinalityEstimator {
 public:
  enum class Objective { kMinCv, kMinEntropy };

  DispersionGuidedEstimator(const stats::MarkovTable& markov,
                            const stats::DispersionCatalog& dispersion,
                            Objective objective = Objective::kMinCv)
      : markov_(markov), dispersion_(dispersion), objective_(objective) {}

  std::string name() const override {
    return objective_ == Objective::kMinCv ? "min-cv-path"
                                           : "min-entropy-path";
  }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const stats::MarkovTable& markov_;
  const stats::DispersionCatalog& dispersion_;
  Objective objective_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_DISPERSION_PATH_H_
