#ifndef CEGRAPH_ESTIMATORS_DEFAULT_RDF3X_H_
#define CEGRAPH_ESTIMATORS_DEFAULT_RDF3X_H_

#include "estimators/estimator.h"
#include "graph/graph.h"

namespace cegraph {

/// A stand-in for the open-source RDF-3X default estimator used as the
/// plan-quality baseline in §6.6 ("basic statistics about the original
/// triple counts and some 'magic' constants"): the product of relation
/// sizes with a fixed magic join selectivity per join-vertex occurrence.
/// Like the original it is wildly inaccurate (the paper measured a median
/// q-error of 127x underestimation vs. <2x for the optimistic estimators),
/// which is exactly the property the plan-quality experiment needs.
class DefaultRdf3xEstimator : public CardinalityEstimator {
 public:
  explicit DefaultRdf3xEstimator(const graph::Graph& g,
                                 double magic_selectivity = 0.01)
      : g_(g), magic_selectivity_(magic_selectivity) {}

  std::string name() const override { return "rdf3x-default"; }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const graph::Graph& g_;
  double magic_selectivity_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_DEFAULT_RDF3X_H_
