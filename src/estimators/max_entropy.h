#ifndef CEGRAPH_ESTIMATORS_MAX_ENTROPY_H_
#define CEGRAPH_ESTIMATORS_MAX_ENTROPY_H_

#include "estimators/estimator.h"
#include "stats/markov_table.h"

namespace cegraph {

/// The maximum-entropy estimator sketched in the paper's §7 (Markl et
/// al. [18]) and explicitly left to future work: "Multiway join queries
/// can be modeled as estimating the selectivity of the full join
/// predicate ... This way, one can construct another optimistic estimator
/// using the same statistics."
///
/// Model: each query edge e is a join predicate P_e over the Cartesian
/// product of the query's relations. The Markov table supplies the exact
/// selectivity of every conjunction over a *connected* sub-query S with
/// |S| <= h:
///     sel(S) = |join of S| / prod_{e in S} |R_e|.
/// The estimator computes the maximum-entropy distribution over the 2^m
/// predicate-outcome atoms consistent with those selectivities — by
/// iterative proportional fitting (IPF), the standard ME solver for
/// marginal constraints — and returns
///     estimate = P(all predicates hold) * prod_e |R_e|.
///
/// With constraints only up to size h, the ME distribution fills in the
/// remaining correlations "as independently as possible", which
/// generalizes the conditional-independence chain formulas of CEG_O paths
/// into a single holistic estimate.
class MaxEntropyEstimator : public CardinalityEstimator {
 public:
  struct Options {
    int max_iterations = 200;
    double tolerance = 1e-9;
  };

  explicit MaxEntropyEstimator(const stats::MarkovTable& markov)
      : markov_(markov) {}
  MaxEntropyEstimator(const stats::MarkovTable& markov,
                      const Options& options)
      : markov_(markov), options_(options) {}

  std::string name() const override { return "max-entropy"; }

  /// Supports queries with up to 16 edges (2^16 atoms).
  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const stats::MarkovTable& markov_;
  Options options_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_MAX_ENTROPY_H_
