#ifndef CEGRAPH_ESTIMATORS_OPTIMISTIC_H_
#define CEGRAPH_ESTIMATORS_OPTIMISTIC_H_

#include <vector>

#include "ceg/ceg.h"
#include "ceg/ceg_o.h"
#include "ceg/ceg_ocr.h"
#include "estimators/estimator.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"

namespace cegraph {

/// The estimate aggregator over the considered paths (§4.2).
enum class Aggregator { kMaxAggr, kMinAggr, kAvgAggr };

/// Which optimistic CEG the estimator runs on.
enum class OptimisticCeg { kCegO, kCegOcr };

/// One point in the paper's 3x3 space of optimistic estimators: a
/// path-length choice (max-hop / min-hop / all-hops) combined with an
/// estimate aggregator (max / min / avg). The paper's named prior systems
/// map to: Markov tables [2] = max-hop; graph summaries [17] = min-hop;
/// graph catalogue [20] = min-hop-min.
struct OptimisticSpec {
  ceg::Ceg::HopMode path_length = ceg::Ceg::HopMode::kMaxHop;
  Aggregator aggregator = Aggregator::kMaxAggr;
  OptimisticCeg ceg_kind = OptimisticCeg::kCegO;
  ceg::CegOOptions ceg_options;
};

/// "max-hop-max", "all-hops-avg", ... (plus "@ocr" suffix on CEG_OCR).
std::string SpecName(const OptimisticSpec& spec);

/// The 9 estimators of §4.2 in the paper's presentation order
/// (path-length major: max-hop, min-hop, all-hops; aggregator minor).
std::vector<OptimisticSpec> AllOptimisticSpecs(
    OptimisticCeg kind = OptimisticCeg::kCegO);

/// A summary-based optimistic estimator (§4): builds CEG_O (or CEG_OCR)
/// for the query over a Markov table and aggregates path estimates per the
/// spec. Aggregation uses exact DP over the CEG (Ceg::ComputeAggregates),
/// so no path enumeration ever happens at estimation time.
class OptimisticEstimator : public CardinalityEstimator {
 public:
  /// `rates` is required iff spec.ceg_kind == kCegOcr.
  OptimisticEstimator(const stats::MarkovTable& markov, OptimisticSpec spec,
                      const stats::CycleClosingRates* rates = nullptr)
      : markov_(markov), spec_(spec), rates_(rates) {}

  std::string name() const override { return SpecName(spec_); }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

  /// Builds the spec's CEG for `q` (shared by Estimate, the P* oracle and
  /// the bound sketch).
  util::StatusOr<ceg::BuiltCegO> BuildCeg(const query::QueryGraph& q) const;

  /// Reduces precomputed path aggregates to the spec's estimate.
  static util::StatusOr<double> EstimateFromAggregates(
      const ceg::Ceg::PathAggregates& aggregates, const OptimisticSpec& spec);

 private:
  const stats::MarkovTable& markov_;
  OptimisticSpec spec_;
  const stats::CycleClosingRates* rates_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_OPTIMISTIC_H_
