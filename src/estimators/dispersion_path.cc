#include "estimators/dispersion_path.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ceg/ceg_o.h"

namespace cegraph {

util::StatusOr<double> DispersionGuidedEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (AnyEmptyRelation(markov_.graph(), q)) return 0.0;
  auto built = ceg::BuildCegO(q, markov_);
  if (!built.ok()) return built.status();
  const ceg::Ceg& ceg = built->ceg;

  // Per-edge irregularity cost.
  std::vector<double> cost(ceg.num_edges(), -1);
  std::vector<double> known_costs;
  for (size_t ei = 0; ei < ceg.num_edges(); ++ei) {
    const auto& provenance = built->edge_provenance[ei];
    const query::QueryGraph pattern = q.ExtractPattern(provenance.pattern);
    // Re-express the intersection in the extracted pattern's edge
    // numbering: ExtractPattern keeps edges in ascending original order.
    query::EdgeSet local_i = 0;
    {
      uint32_t local = 0;
      for (uint32_t i = 0; i < q.num_edges(); ++i) {
        if (!(provenance.pattern & (query::EdgeSet{1} << i))) continue;
        if (provenance.intersection & (query::EdgeSet{1} << i)) {
          local_i |= query::EdgeSet{1} << local;
        }
        ++local;
      }
    }
    auto dispersion = dispersion_.Get(pattern, local_i);
    if (!dispersion.ok()) continue;  // neutral cost assigned below
    const double c = objective_ == Objective::kMinCv
                         ? std::log1p(dispersion->cv2)
                         : 1.0 - dispersion->entropy;
    cost[ei] = c;
    known_costs.push_back(c);
  }
  double neutral = 0;
  if (!known_costs.empty()) {
    std::nth_element(known_costs.begin(),
                     known_costs.begin() + known_costs.size() / 2,
                     known_costs.end());
    neutral = known_costs[known_costs.size() / 2];
  }
  for (double& c : cost) {
    if (c < 0) c = neutral;
  }

  // DP over the DAG: minimize summed irregularity; carry the estimate's
  // log-weight along the argmin. Ties break toward the larger estimate
  // (the paper's anti-underestimation default).
  std::vector<int> indegree(ceg.num_nodes(), 0);
  for (const auto& e : ceg.edges()) ++indegree[e.to];
  std::vector<uint32_t> topo;
  for (uint32_t v = 0; v < ceg.num_nodes(); ++v) {
    if (indegree[v] == 0) topo.push_back(v);
  }
  for (size_t i = 0; i < topo.size(); ++i) {
    for (uint32_t ei : ceg.OutEdges(topo[i])) {
      if (--indegree[ceg.edges()[ei].to] == 0) {
        topo.push_back(ceg.edges()[ei].to);
      }
    }
  }
  if (topo.size() != ceg.num_nodes()) {
    return util::InternalError("CEG_O must be a DAG");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_cost(ceg.num_nodes(), kInf);
  std::vector<double> best_log(ceg.num_nodes(), -kInf);
  best_cost[ceg.source()] = 0;
  best_log[ceg.source()] = 0;
  for (uint32_t v : topo) {
    if (std::isinf(best_cost[v])) continue;
    for (uint32_t ei : ceg.OutEdges(v)) {
      const auto& e = ceg.edges()[ei];
      const double nc = best_cost[v] + cost[ei];
      const double nl = best_log[v] + e.log_weight;
      if (nc < best_cost[e.to] - 1e-12 ||
          (nc < best_cost[e.to] + 1e-12 && nl > best_log[e.to])) {
        best_cost[e.to] = nc;
        best_log[e.to] = nl;
      }
    }
  }
  if (std::isinf(best_cost[ceg.sink()])) {
    return util::InternalError("CEG sink unreachable");
  }
  return std::exp2(best_log[ceg.sink()]);
}

}  // namespace cegraph
