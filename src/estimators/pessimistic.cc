#include "estimators/pessimistic.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "lp/simplex.h"

namespace cegraph {

namespace {

using query::VertexSet;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

util::StatusOr<double> MolpEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  if (AnyEmptyRelation(catalog_.graph(), q)) return 0.0;
  auto stats = stats::DegreeStats::Build(catalog_, q, include_two_joins_);
  if (!stats.ok()) return stats.status();
  auto log_bound = ceg::MolpMinLogWeight(q, *stats);
  if (!log_bound.ok()) return log_bound.status();
  if (std::isinf(*log_bound)) {
    return util::InternalError("MOLP sink unreachable");
  }
  return std::exp2(*log_bound);
}

util::StatusOr<double> MolpViaLp(const query::QueryGraph& q,
                                 const stats::DegreeStats& stats,
                                 bool include_projection_inequalities) {
  const uint32_t n = q.num_vertices();
  if (n > 14) return util::InvalidArgumentError("too many attributes");
  const VertexSet full = (VertexSet{1} << n) - 1;

  // One LP variable per non-empty attribute subset; s_emptyset == 0 is
  // substituted away. Variable index = subset - 1.
  lp::LpProblem problem;
  problem.num_vars = full;  // subsets 1..full
  problem.objective.assign(problem.num_vars, 0.0);
  problem.objective[full - 1] = 1.0;  // maximize s_A

  auto var = [&](VertexSet w) { return static_cast<size_t>(w) - 1; };

  if (include_projection_inequalities) {
    // s_X <= s_Y for X ⊂ Y: single-attribute removals suffice (they
    // compose transitively).
    for (VertexSet y = 1; y <= full; ++y) {
      for (uint32_t v = 0; v < n; ++v) {
        const VertexSet bit = VertexSet{1} << v;
        if (!(y & bit)) continue;
        const VertexSet x = y & ~bit;
        std::vector<double> row(problem.num_vars, 0.0);
        if (x != 0) row[var(x)] += 1.0;
        row[var(y)] -= 1.0;
        problem.AddLe(std::move(row), 0.0);
      }
    }
  }

  // Extension inequalities: s_{Y∪E} <= s_{X∪E} + log deg(X, Y, R) for all
  // E ⊆ A. Equivalently, for every W1 ⊇ X: s_{W1 ∪ Y} <= s_{W1} + log deg.
  for (const stats::StatRelation& rel : stats.relations()) {
    for (const auto& [key, value] : rel.deg) {
      const auto& [x, y] = key;
      if (x == y || value <= 0) continue;
      const double log_deg = std::log2(value);
      for (VertexSet w1 = 0; w1 <= full; ++w1) {
        if ((w1 & x) != x) continue;
        const VertexSet w2 = w1 | y;
        if (w2 == w1) continue;
        std::vector<double> row(problem.num_vars, 0.0);
        row[var(w2)] += 1.0;
        if (w1 != 0) row[var(w1)] -= 1.0;
        problem.AddLe(std::move(row), log_deg);
      }
    }
  }

  auto solution = lp::SolveLp(problem);
  if (!solution.ok()) return solution.status();
  switch (solution->status) {
    case lp::LpStatus::kOptimal:
      return solution->objective;
    case lp::LpStatus::kUnbounded:
      return kInf;  // insufficient statistics: no finite bound
    case lp::LpStatus::kInfeasible:
      return util::InternalError("MOLP infeasible (should not happen)");
  }
  return util::InternalError("unknown LP status");
}

util::StatusOr<double> CbsEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  if (AnyEmptyRelation(catalog_.graph(), q)) return 0.0;
  auto stats = stats::DegreeStats::Build(catalog_, q,
                                         /*include_two_joins=*/false);
  if (!stats.ok()) return stats.status();

  const uint32_t n = q.num_vertices();
  const VertexSet full = (VertexSet{1} << n) - 1;

  // Set-cover DP over attribute subsets: best[T] = min log-cost of a
  // partial coverage (prefix of relations) whose covered union is T.
  std::vector<double> best(static_cast<size_t>(full) + 1, kInf);
  best[0] = 0;
  for (const stats::StatRelation& rel : stats->relations()) {
    // Options: cover all attrs (factor |R|), all-but-one (factor = degree
    // of the uncovered attribute), or none (factor 1).
    struct Option {
      VertexSet covered;
      double log_cost;
    };
    std::vector<Option> options;
    options.push_back({0, 0.0});
    const VertexSet attrs = rel.attrs;
    const double card = rel.Get(0, attrs);
    if (card > 0) options.push_back({attrs, std::log2(card)});
    for (uint32_t v = 0; v < n; ++v) {
      const VertexSet bit = VertexSet{1} << v;
      if (!(attrs & bit)) continue;
      const VertexSet covered = attrs & ~bit;
      if (covered == 0) continue;  // |A_i|-1 == 0: same as covering none
      const double deg = rel.Get(bit, attrs);
      if (deg > 0) options.push_back({covered, std::log2(deg)});
    }
    std::vector<double> next(best.size(), kInf);
    for (VertexSet t = 0; t <= full; ++t) {
      if (std::isinf(best[t])) continue;
      for (const Option& option : options) {
        const VertexSet nt = t | option.covered;
        next[nt] = std::min(next[nt], best[t] + option.log_cost);
      }
    }
    best = std::move(next);
  }
  if (std::isinf(best[full])) {
    return util::InternalError("no feasible CBS coverage");
  }
  return std::exp2(best[full]);
}

util::StatusOr<double> DbplpBoundForCover(const query::QueryGraph& q,
                                          const stats::DegreeStats& stats,
                                          const ceg::Cover& cover) {
  const uint32_t n = q.num_vertices();
  lp::LpProblem problem;
  problem.num_vars = n;
  problem.objective.assign(n, -1.0);  // maximize -(sum v_a) == minimize sum

  const auto& relations = stats.relations();
  if (cover.covered.size() != relations.size()) {
    return util::InvalidArgumentError("cover arity mismatch");
  }
  for (size_t j = 0; j < relations.size(); ++j) {
    const VertexSet a_j = cover.covered[j];
    if (a_j == 0) continue;
    for (VertexSet sub = a_j;; sub = (sub - 1) & a_j) {
      const double deg = relations[j].Get(sub, a_j);
      if (deg > 0) {
        // sum_{a in A_j \ sub} v_a >= log deg(sub, A_j).
        std::vector<double> row(n, 0.0);
        for (uint32_t v = 0; v < n; ++v) {
          if ((a_j & ~sub) & (VertexSet{1} << v)) row[v] = 1.0;
        }
        problem.AddGe(std::move(row), std::log2(deg));
      }
      if (sub == 0) break;
    }
  }

  auto solution = lp::SolveLp(problem);
  if (!solution.ok()) return solution.status();
  if (solution->status != lp::LpStatus::kOptimal) {
    return util::InternalError("DBPLP LP not optimal");
  }
  return -solution->objective;
}

util::StatusOr<double> BestDbplpBound(const query::QueryGraph& q,
                                      const stats::DegreeStats& stats) {
  const std::vector<ceg::Cover> covers =
      ceg::EnumerateCovers(q, stats, /*cbs_choices_only=*/false);
  if (covers.empty()) {
    return util::NotFoundError("query has no cover");
  }
  double best = kInf;
  for (const ceg::Cover& cover : covers) {
    auto bound = DbplpBoundForCover(q, stats, cover);
    if (!bound.ok()) return bound.status();
    best = std::min(best, *bound);
  }
  return best;
}

util::StatusOr<double> AgmBound(const query::QueryGraph& q,
                                const stats::DegreeStats& stats) {
  const uint32_t n = q.num_vertices();
  const auto& relations = stats.relations();
  // Only base relations participate in the classical AGM bound; we use
  // every relation whose full cardinality deg(0, attrs) is known, which
  /// for base-only stats is exactly the base relations.
  std::vector<std::pair<VertexSet, double>> rels;  // (attrs, log|R|)
  for (const stats::StatRelation& rel : relations) {
    const double card = rel.Get(0, rel.attrs);
    if (card > 0) rels.push_back({rel.attrs, std::log2(card)});
  }
  lp::LpProblem problem;
  problem.num_vars = rels.size();
  problem.objective.assign(rels.size(), 0.0);
  for (size_t i = 0; i < rels.size(); ++i) {
    problem.objective[i] = -rels[i].second;  // maximize -(sum x log|R|)
  }
  for (uint32_t v = 0; v < n; ++v) {
    std::vector<double> row(rels.size(), 0.0);
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].first & (VertexSet{1} << v)) row[i] = 1.0;
    }
    problem.AddGe(std::move(row), 1.0);
  }
  auto solution = lp::SolveLp(problem);
  if (!solution.ok()) return solution.status();
  if (solution->status != lp::LpStatus::kOptimal) {
    return util::InternalError("AGM LP not optimal");
  }
  return -solution->objective;
}

}  // namespace cegraph
