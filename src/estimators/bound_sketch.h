#ifndef CEGRAPH_ESTIMATORS_BOUND_SKETCH_H_
#define CEGRAPH_ESTIMATORS_BOUND_SKETCH_H_

#include "estimators/estimator.h"
#include "graph/graph.h"

namespace cegraph {

/// The bound-sketch partitioning optimization of Cai et al. [5]
/// (§5.2.1-5.2.2), applicable to *any* CEG estimator:
///  1. Run the inner estimator once on the unpartitioned data and recover
///     its chosen CEG path.
///  2. S = the query's join attributes that are not extension attributes
///     through a bound edge of that path.
///  3. Hash-partition each relation on its attributes in S into
///     B = floor(K^(1/|S|)) buckets per attribute, producing K sub-queries
///     Q_{j1..jz} whose relations are the matching partition pieces.
///  4. The final estimate is the sum of the inner estimates of the K
///     sub-queries, each computed over partition-specific statistics
///     (the paper's "we worked backwards from the queries to find the
///     necessary statistics"; our lazy catalogs realize this directly).
///
/// Inner estimators supported: the max-hop-max optimistic estimator (the
/// paper's Fig. 12 left column) and MOLP (right column).
class BoundSketchEstimator : public CardinalityEstimator {
 public:
  enum class Inner { kOptimisticMaxHopMax, kMolp };

  struct Options {
    int budget_k = 4;        ///< partitioning budget K (1 = no partitioning)
    int markov_h = 2;        ///< Markov table size for the optimistic inner
    bool molp_two_joins = false;  ///< 2-join stats for the MOLP inner
  };

  BoundSketchEstimator(const graph::Graph& g, Inner inner,
                       const Options& options)
      : g_(g), inner_(inner), options_(options) {}

  std::string name() const override;

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  /// Estimate on one (possibly partition-filtered) graph where query edge i
  /// uses relation/label i.
  util::StatusOr<double> InnerEstimate(const graph::Graph& g,
                                       const query::QueryGraph& q) const;

  /// Derives the partition attribute set S from the inner estimator's
  /// chosen path on the unpartitioned data.
  util::StatusOr<query::VertexSet> PartitionAttributes(
      const query::QueryGraph& q) const;

  const graph::Graph& g_;
  Inner inner_;
  Options options_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_BOUND_SKETCH_H_
