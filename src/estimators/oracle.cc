#include "estimators/oracle.h"

#include <cmath>

namespace cegraph {

util::StatusOr<double> PStarEstimate(const ceg::Ceg& ceg,
                                     double true_cardinality,
                                     size_t max_paths, bool* truncated) {
  if (true_cardinality <= 0) {
    return util::InvalidArgumentError("true cardinality must be positive");
  }
  const auto paths = ceg.EnumerateSimplePaths(max_paths, truncated);
  if (paths.empty()) {
    return util::NotFoundError("CEG has no (source, sink) path");
  }
  const double target_log = std::log2(true_cardinality);
  double best_estimate = 0;
  double best_error = std::numeric_limits<double>::infinity();
  for (const auto& path : paths) {
    const double err = std::fabs(path.log_weight - target_log);
    if (err < best_error) {
      best_error = err;
      best_estimate = std::exp2(path.log_weight);
    }
  }
  return best_estimate;
}

}  // namespace cegraph
