#include "estimators/estimator.h"

// CardinalityEstimator is a pure interface; this translation unit anchors
// its vtable (key function emission) so every estimator links against one
// definition.

namespace cegraph {}  // namespace cegraph
