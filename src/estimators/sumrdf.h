#ifndef CEGRAPH_ESTIMATORS_SUMRDF_H_
#define CEGRAPH_ESTIMATORS_SUMRDF_H_

#include "estimators/estimator.h"
#include "stats/summary_graph.h"

namespace cegraph {

/// The SumRDF baseline (Stefanoni et al. [30], §6.4): matches the query
/// homomorphically on the summary graph and returns the expected
/// cardinality over uniformly random instantiations of each superedge —
/// the summary-level uniformity ("possible worlds") assumption. For each
/// summary embedding sigma the expected count is
///   prod_edges w(sigma(u), l, sigma(v)) / (|sigma(u)| * |sigma(v)|)
///   * prod_vertices |sigma(v)|,
/// summed over embeddings. Backtracking over a dense summary can blow up,
/// so the estimator carries a step budget and fails with ResourceExhausted
/// — the analogue of SumRDF's timeouts in the paper ("SumRDF timed out on
/// several queries"); harnesses drop those queries for all estimators.
class SumRdfEstimator : public CardinalityEstimator {
 public:
  SumRdfEstimator(const stats::SummaryGraph& summary,
                  uint64_t step_budget = 50'000'000)
      : summary_(summary), step_budget_(step_budget) {}

  std::string name() const override { return "sumrdf"; }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const stats::SummaryGraph& summary_;
  uint64_t step_budget_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_SUMRDF_H_
