#include "estimators/default_rdf3x.h"

namespace cegraph {

util::StatusOr<double> DefaultRdf3xEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0) {
    return util::InvalidArgumentError("empty query");
  }
  double estimate = 1.0;
  for (const query::QueryEdge& e : q.edges()) {
    estimate *= static_cast<double>(g_.RelationSize(e.label));
  }
  // One magic selectivity per join occurrence: each vertex shared by k
  // edges contributes k-1 equality predicates.
  for (query::QVertex v = 0; v < q.num_vertices(); ++v) {
    const uint32_t degree = q.Degree(v);
    for (uint32_t i = 1; i < degree; ++i) estimate *= magic_selectivity_;
  }
  return std::max(estimate, 1.0);
}

}  // namespace cegraph
