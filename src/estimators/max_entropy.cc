#include "estimators/max_entropy.h"

#include <bit>
#include <cmath>
#include <vector>

#include "query/subquery.h"

namespace cegraph {

namespace {

using query::EdgeSet;

}  // namespace

util::StatusOr<double> MaxEntropyEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  if (q.num_edges() > 16) {
    return util::InvalidArgumentError("max-entropy limited to 16 edges");
  }
  if (AnyEmptyRelation(markov_.graph(), q)) return 0.0;

  // Sample space: uniform assignments of the query's vertex variables to
  // graph vertices, |V|^n outcomes. Predicate P_e holds when the assigned
  // pair is an edge of R_e, so for a sub-query S
  //   sel(S) = |join of S| / |V|^(vertices touched by S),
  // since the untouched variables are free.
  const double v = static_cast<double>(markov_.graph().num_vertices());
  const double space = std::pow(v, q.num_vertices());

  struct Constraint {
    EdgeSet subset;
    double selectivity;
  };
  std::vector<Constraint> constraints;
  for (EdgeSet s : query::ConnectedSubsets(q, markov_.h())) {
    auto card = markov_.Cardinality(q.ExtractPattern(s));
    if (!card.ok()) return card.status();
    if (*card == 0) return 0.0;  // an empty sub-query empties the query
    const int touched = std::popcount(q.VerticesOf(s));
    constraints.push_back({s, *card / std::pow(v, touched)});
  }

  // Iterative proportional fitting over the 2^m predicate-outcome atoms.
  // Each constraint is the binary partition {atoms ⊇ S} vs rest with mass
  // target sel(S); scaling both sides preserves normalization and
  // converges to the maximum-entropy distribution (generalized iterative
  // scaling).
  const size_t num_atoms = size_t{1} << q.num_edges();
  std::vector<double> p(num_atoms, 1.0 / static_cast<double>(num_atoms));

  double worst = 1;
  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    worst = 0;
    for (const Constraint& constraint : constraints) {
      double in_mass = 0;
      for (size_t b = 0; b < num_atoms; ++b) {
        if ((b & constraint.subset) == constraint.subset) in_mass += p[b];
      }
      const double out_mass = 1.0 - in_mass;
      const double target = constraint.selectivity;
      if (in_mass <= 0 || out_mass <= 0) continue;  // degenerate; skip
      const double scale_in = target / in_mass;
      const double scale_out = (1.0 - target) / out_mass;
      for (size_t b = 0; b < num_atoms; ++b) {
        if ((b & constraint.subset) == constraint.subset) {
          p[b] *= scale_in;
        } else {
          p[b] *= scale_out;
        }
      }
      worst = std::max(worst, std::fabs(in_mass - target) /
                                  std::max(target, 1e-300));
    }
    if (worst < options_.tolerance) break;
  }

  const double full_mass = p[num_atoms - 1];
  return full_mass * space;
}

}  // namespace cegraph
