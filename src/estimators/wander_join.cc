#include "estimators/wander_join.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace cegraph {

namespace {

using graph::VertexId;
using query::QueryEdge;
using query::QueryGraph;

constexpr VertexId kUnassigned = 0xFFFFFFFF;

}  // namespace

std::string WanderJoinEstimator::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wj-%.4g%%", options_.sampling_ratio * 100);
  return buf;
}

util::StatusOr<double> WanderJoinEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  if (AnyEmptyRelation(g_, q)) return 0.0;

  // Walk plan: start from the smallest relation, then always extend a
  // bound vertex (check edges verified in place).
  uint32_t start = 0;
  for (uint32_t i = 1; i < q.num_edges(); ++i) {
    if (g_.RelationSize(q.edge(i).label) <
        g_.RelationSize(q.edge(start).label)) {
      start = i;
    }
  }
  std::vector<uint32_t> order = {start};
  {
    std::vector<bool> used(q.num_edges(), false);
    used[start] = true;
    uint32_t bound = (1u << q.edge(start).src) | (1u << q.edge(start).dst);
    while (order.size() < q.num_edges()) {
      // Prefer check edges (both endpoints bound) for early pruning.
      uint32_t pick = q.num_edges();
      for (uint32_t i = 0; i < q.num_edges(); ++i) {
        if (used[i]) continue;
        const QueryEdge& e = q.edge(i);
        const bool sb = bound & (1u << e.src), db = bound & (1u << e.dst);
        if (sb && db) {
          pick = i;
          break;
        }
        if (pick == q.num_edges() && (sb || db)) pick = i;
      }
      used[pick] = true;
      order.push_back(pick);
      bound |= (1u << q.edge(pick).src) | (1u << q.edge(pick).dst);
    }
  }

  const auto start_rel = g_.RelationEdges(q.edge(start).label);
  const double rel_size = static_cast<double>(start_rel.size());
  const int num_walks = std::max<int>(
      options_.min_samples,
      static_cast<int>(std::ceil(options_.sampling_ratio * rel_size)));

  util::Rng rng(options_.seed);
  std::vector<VertexId> assignment(q.num_vertices(), kUnassigned);
  double total = 0;
  for (int walk = 0; walk < num_walks; ++walk) {
    std::fill(assignment.begin(), assignment.end(), kUnassigned);
    double weight = rel_size;  // inverse of the 1/|R_start| start prob.
    const graph::Edge& se = start_rel[rng.Uniform(start_rel.size())];
    const QueryEdge& sq = q.edge(start);
    if (sq.src == sq.dst && se.src != se.dst) continue;  // failed walk
    assignment[sq.src] = se.src;
    assignment[sq.dst] = se.dst;
    bool ok = true;
    for (size_t step = 1; step < order.size() && ok; ++step) {
      const QueryEdge& e = q.edge(order[step]);
      const bool sb = assignment[e.src] != kUnassigned;
      const bool db = assignment[e.dst] != kUnassigned;
      if (sb && db) {
        ok = g_.HasEdge(assignment[e.src], assignment[e.dst], e.label);
        continue;
      }
      const auto candidates = sb
                                  ? g_.OutNeighbors(assignment[e.src], e.label)
                                  : g_.InNeighbors(assignment[e.dst], e.label);
      if (candidates.empty()) {
        ok = false;
        break;
      }
      const VertexId choice = candidates[rng.Uniform(candidates.size())];
      assignment[sb ? e.dst : e.src] = choice;
      weight *= static_cast<double>(candidates.size());
    }
    if (ok) total += weight;
  }
  return total / num_walks;
}

}  // namespace cegraph
