#ifndef CEGRAPH_ESTIMATORS_ESTIMATOR_H_
#define CEGRAPH_ESTIMATORS_ESTIMATOR_H_

#include <string>

#include "query/query_graph.h"
#include "util/status.h"

namespace cegraph {

/// The common interface of every cardinality estimator in this library
/// (optimistic CEG estimators, MOLP/CBS pessimistic bounds, Characteristic
/// Sets, SumRDF, WanderJoin, the bound-sketch refinement, and the
/// RDF-3X-style default). Estimates are output cardinalities of the natural
/// join the query denotes.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Short stable identifier, e.g. "max-hop-max", "molp", "wj-0.25%".
  virtual std::string name() const = 0;

  /// Estimates |Q|. Implementations may fail (e.g. SumRDF times out on
  /// dense summaries, mirroring §6.4); harnesses drop such queries from
  /// every estimator's distribution, as the paper does.
  ///
  /// Concurrency: the parallel WorkloadRunner calls Estimate from several
  /// threads at once (distinct queries). Implementations must therefore
  /// be safe for concurrent calls — stateless per call, or guarding any
  /// mutable members. All in-tree estimators satisfy this; a stateful
  /// estimator can still be run with a serial WorkloadRunner.
  virtual util::StatusOr<double> Estimate(
      const query::QueryGraph& q) const = 0;
};

/// Convenience: true iff every relation referenced by `q` is non-empty in
/// a graph with `relation_size(label)` semantics. Estimators use this to
/// return an exact 0 for queries over empty relations (which otherwise
/// produce log-of-zero weights).
template <typename Graph>
bool AnyEmptyRelation(const Graph& g, const query::QueryGraph& q) {
  for (const query::QueryEdge& e : q.edges()) {
    if (g.RelationSize(e.label) == 0) return true;
  }
  return false;
}

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_ESTIMATOR_H_
