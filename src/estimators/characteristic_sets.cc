#include "estimators/characteristic_sets.h"

#include <map>
#include <set>
#include <vector>

namespace cegraph {

util::StatusOr<double> CharacteristicSetsEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0) {
    return util::InvalidArgumentError("empty query");
  }
  // Decompose into out-stars by source vertex.
  std::map<query::QVertex, std::vector<graph::Label>> stars;
  for (const query::QueryEdge& e : q.edges()) {
    stars[e.src].push_back(e.label);
  }

  double estimate = 1.0;
  size_t star_vertex_occurrences = 0;
  for (const auto& [center, labels] : stars) {
    estimate *= cs_.EstimateStar(labels);
    // Distinct vertices of this star: the center plus one leaf per edge
    // (leaves that coincide in the query still count once).
    std::set<query::QVertex> verts = {center};
    for (const query::QueryEdge& e : q.edges()) {
      if (e.src == center) verts.insert(e.dst);
    }
    star_vertex_occurrences += verts.size();
  }
  // Each query vertex mentioned by more than one star is an independence
  // join: correct by 1/|V| per extra occurrence.
  const size_t dup = star_vertex_occurrences - q.num_vertices();
  for (size_t i = 0; i < dup; ++i) {
    estimate /= static_cast<double>(cs_.num_graph_vertices());
  }
  return estimate;
}

}  // namespace cegraph
