#ifndef CEGRAPH_ESTIMATORS_WANDER_JOIN_H_
#define CEGRAPH_ESTIMATORS_WANDER_JOIN_H_

#include "estimators/estimator.h"
#include "graph/graph.h"
#include "util/random.h"

namespace cegraph {

/// Options for the WanderJoin estimator (§6.5).
struct WanderJoinOptions {
  /// Fraction of the start relation sampled (with replacement); the
  /// paper's experiments use 0.0001 .. 0.0075.
  double sampling_ratio = 0.0025;
  /// At least this many walks regardless of the ratio (tiny relations).
  int min_samples = 1;
  uint64_t seed = 99;
};

/// The WanderJoin sampling-based estimator (Li et al. [15] as deployed in
/// G-CARE [25], §6.5): pick a start query edge, sample matching data edges
/// with replacement, extend each sample one query edge at a time by
/// choosing a uniformly random candidate, and correct by the product of the
/// candidate-set sizes (inverse sampling probability). The sum of the
/// per-walk estimates is scaled by 1/(sampling_ratio * |R_start|) * |R_start|
/// — i.e. the mean per-walk estimate times the start-relation size.
/// Unbiased; variance shrinks with the sampling ratio.
class WanderJoinEstimator : public CardinalityEstimator {
 public:
  WanderJoinEstimator(const graph::Graph& g, const WanderJoinOptions& options)
      : g_(g), options_(options) {}

  std::string name() const override;

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override;

 private:
  const graph::Graph& g_;
  WanderJoinOptions options_;
};

}  // namespace cegraph

#endif  // CEGRAPH_ESTIMATORS_WANDER_JOIN_H_
