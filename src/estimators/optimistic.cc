#include "estimators/optimistic.h"

#include <cmath>

namespace cegraph {

std::string SpecName(const OptimisticSpec& spec) {
  std::string name;
  switch (spec.path_length) {
    case ceg::Ceg::HopMode::kMaxHop:
      name = "max-hop";
      break;
    case ceg::Ceg::HopMode::kMinHop:
      name = "min-hop";
      break;
    case ceg::Ceg::HopMode::kAllHops:
      name = "all-hops";
      break;
  }
  switch (spec.aggregator) {
    case Aggregator::kMaxAggr:
      name += "-max";
      break;
    case Aggregator::kMinAggr:
      name += "-min";
      break;
    case Aggregator::kAvgAggr:
      name += "-avg";
      break;
  }
  if (spec.ceg_kind == OptimisticCeg::kCegOcr) name += "@ocr";
  return name;
}

std::vector<OptimisticSpec> AllOptimisticSpecs(OptimisticCeg kind) {
  std::vector<OptimisticSpec> out;
  for (auto hop : {ceg::Ceg::HopMode::kMaxHop, ceg::Ceg::HopMode::kMinHop,
                   ceg::Ceg::HopMode::kAllHops}) {
    for (auto aggr :
         {Aggregator::kMinAggr, Aggregator::kAvgAggr, Aggregator::kMaxAggr}) {
      OptimisticSpec spec;
      spec.path_length = hop;
      spec.aggregator = aggr;
      spec.ceg_kind = kind;
      out.push_back(spec);
    }
  }
  return out;
}

util::StatusOr<ceg::BuiltCegO> OptimisticEstimator::BuildCeg(
    const query::QueryGraph& q) const {
  if (spec_.ceg_kind == OptimisticCeg::kCegOcr) {
    if (rates_ == nullptr) {
      return util::FailedPreconditionError(
          "CEG_OCR requires cycle-closing rates");
    }
    return ceg::BuildCegOcr(q, markov_, *rates_, spec_.ceg_options);
  }
  return ceg::BuildCegO(q, markov_, spec_.ceg_options);
}

util::StatusOr<double> OptimisticEstimator::EstimateFromAggregates(
    const ceg::Ceg::PathAggregates& aggregates, const OptimisticSpec& spec) {
  if (!aggregates.reachable) {
    return util::InternalError("CEG sink unreachable");
  }
  // Select the hop class.
  double min_log = aggregates.min_log;
  double max_log = aggregates.max_log;
  double avg = aggregates.avg_estimate;
  if (spec.path_length != ceg::Ceg::HopMode::kAllHops) {
    const auto& per_hop = aggregates.per_hop;
    const ceg::Ceg::HopAggregate& chosen =
        spec.path_length == ceg::Ceg::HopMode::kMaxHop ? per_hop.back()
                                                       : per_hop.front();
    min_log = chosen.min_log;
    max_log = chosen.max_log;
    avg = chosen.sum_estimates / chosen.path_count;
  }
  switch (spec.aggregator) {
    case Aggregator::kMaxAggr:
      return std::exp2(max_log);
    case Aggregator::kMinAggr:
      return std::exp2(min_log);
    case Aggregator::kAvgAggr:
      return avg;
  }
  return util::InternalError("unknown aggregator");
}

util::StatusOr<double> OptimisticEstimator::Estimate(
    const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  if (AnyEmptyRelation(markov_.graph(), q)) return 0.0;
  auto built = BuildCeg(q);
  if (!built.ok()) return built.status();
  auto aggregates = built->ceg.ComputeAggregates();
  if (!aggregates.ok()) return aggregates.status();
  return EstimateFromAggregates(*aggregates, spec_);
}

}  // namespace cegraph
