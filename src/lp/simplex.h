#ifndef CEGRAPH_LP_SIMPLEX_H_
#define CEGRAPH_LP_SIMPLEX_H_

#include <vector>

#include "util/status.h"

namespace cegraph::lp {

/// A linear program in standard inequality form:
///     maximize    c . x
///     subject to  A x <= b,   x >= 0.
/// Constraints with negative b are allowed (two-phase simplex). Callers
/// encode ">=" rows by negation and equalities as inequality pairs.
struct LpProblem {
  size_t num_vars = 0;
  std::vector<double> objective;            ///< c, size num_vars
  std::vector<std::vector<double>> rows;    ///< A, each row size num_vars
  std::vector<double> rhs;                  ///< b, size rows.size()

  /// Appends the constraint `coeffs . x <= bound`.
  void AddLe(std::vector<double> coeffs, double bound);
  /// Appends `coeffs . x >= bound` (stored negated).
  void AddGe(std::vector<double> coeffs, double bound);
};

enum class LpStatus { kOptimal, kUnbounded, kInfeasible };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0;
  std::vector<double> x;
};

/// Solves `problem` with a dense two-phase primal simplex using Bland's
/// rule (no cycling). Suitable for the small LPs of this library (MOLP has
/// 2^|A| variables with |A| <= 10; DBPLP and AGM are smaller still).
util::StatusOr<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace cegraph::lp

#endif  // CEGRAPH_LP_SIMPLEX_H_
