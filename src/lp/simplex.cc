#include "lp/simplex.h"

#include <cmath>
#include <limits>

namespace cegraph::lp {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Columns: structural vars, slack vars, artificial
/// vars, RHS. Row 0 is the objective (maximization, stored as z-row).
class Tableau {
 public:
  Tableau(const LpProblem& p) {
    m_ = p.rows.size();
    n_ = p.num_vars;
    // Count artificials: one per negative-RHS row.
    for (double b : p.rhs) {
      if (b < -kEps) ++num_artificial_;
    }
    cols_ = n_ + m_ + num_artificial_ + 1;  // + RHS
    a_.assign(m_ + 1, std::vector<double>(cols_, 0.0));
    basis_.assign(m_, 0);

    size_t art = 0;
    for (size_t i = 0; i < m_; ++i) {
      double sign = 1.0;
      if (p.rhs[i] < -kEps) sign = -1.0;  // flip row so RHS >= 0
      for (size_t j = 0; j < n_; ++j) a_[i + 1][j] = sign * p.rows[i][j];
      a_[i + 1][n_ + i] = sign;  // slack (negative slack if flipped)
      a_[i + 1][cols_ - 1] = sign * p.rhs[i];
      if (sign < 0) {
        a_[i + 1][n_ + m_ + art] = 1.0;  // artificial
        basis_[i] = n_ + m_ + art;
        ++art;
      } else {
        basis_[i] = n_ + i;
      }
    }
    objective_ = p.objective;
  }

  LpSolution Solve() {
    LpSolution out;
    if (num_artificial_ > 0) {
      // Phase 1: minimize the sum of artificials == maximize -(sum).
      for (size_t j = 0; j < cols_; ++j) a_[0][j] = 0.0;
      for (size_t j = n_ + m_; j < n_ + m_ + num_artificial_; ++j) {
        a_[0][j] = -1.0;
      }
      PriceOutBasis();
      if (!Iterate()) {
        out.status = LpStatus::kUnbounded;  // cannot happen in phase 1
        return out;
      }
      // With the z-row storing +c (phase-1 c = -1 on artificials), the
      // z-row RHS equals the *negated* objective, i.e. +sum(artificials).
      if (a_[0][cols_ - 1] > kEps) {
        out.status = LpStatus::kInfeasible;
        return out;
      }
      // Drive out any artificial still in the basis (degenerate).
      for (size_t i = 0; i < m_; ++i) {
        if (basis_[i] < n_ + m_) continue;
        bool pivoted = false;
        for (size_t j = 0; j < n_ + m_ && !pivoted; ++j) {
          if (std::fabs(a_[i + 1][j]) > kEps) {
            Pivot(i, j);
            pivoted = true;
          }
        }
        // If the row is all-zero over structural+slack columns the
        // constraint is redundant; leave it.
      }
    }

    // Phase 2.
    for (size_t j = 0; j < cols_; ++j) a_[0][j] = 0.0;
    for (size_t j = 0; j < n_; ++j) a_[0][j] = objective_[j];
    // Forbid artificials from re-entering.
    for (size_t j = n_ + m_; j < n_ + m_ + num_artificial_; ++j) {
      a_[0][j] = -1e30;
    }
    PriceOutBasis();
    if (!Iterate()) {
      out.status = LpStatus::kUnbounded;
      return out;
    }
    out.status = LpStatus::kOptimal;
    // The z-row RHS accumulates the negated objective value.
    out.objective = -a_[0][cols_ - 1];
    out.x.assign(n_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) out.x[basis_[i]] = a_[i + 1][cols_ - 1];
    }
    return out;
  }

 private:
  /// Makes the z-row consistent with the current basis (reduced costs of
  /// basic variables must be zero).
  void PriceOutBasis() {
    for (size_t i = 0; i < m_; ++i) {
      const double coeff = a_[0][basis_[i]];
      if (std::fabs(coeff) <= kEps) continue;
      for (size_t j = 0; j < cols_; ++j) {
        a_[0][j] -= coeff * a_[i + 1][j];
      }
    }
  }

  /// Runs primal simplex with Bland's rule. Returns false on unboundedness.
  bool Iterate() {
    for (;;) {
      // Entering column: smallest index with positive reduced cost.
      size_t enter = cols_;
      for (size_t j = 0; j + 1 < cols_; ++j) {
        if (a_[0][j] > kEps) {
          enter = j;
          break;
        }
      }
      if (enter == cols_) return true;  // optimal
      // Leaving row: min ratio, ties by smallest basis index (Bland).
      size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m_; ++i) {
        if (a_[i + 1][enter] <= kEps) continue;
        const double ratio = a_[i + 1][cols_ - 1] / a_[i + 1][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == m_ || basis_[i] < basis_[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
      if (leave == m_) return false;  // unbounded
      Pivot(leave, enter);
    }
  }

  void Pivot(size_t row, size_t col) {
    const double pivot = a_[row + 1][col];
    for (size_t j = 0; j < cols_; ++j) a_[row + 1][j] /= pivot;
    for (size_t i = 0; i <= m_; ++i) {
      if (i == row + 1) continue;
      const double factor = a_[i][col];
      if (std::fabs(factor) <= kEps) continue;
      for (size_t j = 0; j < cols_; ++j) {
        a_[i][j] -= factor * a_[row + 1][j];
      }
    }
    basis_[row] = col;
  }

  size_t m_ = 0, n_ = 0, cols_ = 0, num_artificial_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<size_t> basis_;
  std::vector<double> objective_;
};

}  // namespace

void LpProblem::AddLe(std::vector<double> coeffs, double bound) {
  coeffs.resize(num_vars, 0.0);
  rows.push_back(std::move(coeffs));
  rhs.push_back(bound);
}

void LpProblem::AddGe(std::vector<double> coeffs, double bound) {
  coeffs.resize(num_vars, 0.0);
  for (double& c : coeffs) c = -c;
  rows.push_back(std::move(coeffs));
  rhs.push_back(-bound);
}

util::StatusOr<LpSolution> SolveLp(const LpProblem& problem) {
  if (problem.objective.size() != problem.num_vars) {
    return util::InvalidArgumentError("objective size mismatch");
  }
  for (const auto& row : problem.rows) {
    if (row.size() != problem.num_vars) {
      return util::InvalidArgumentError("constraint row size mismatch");
    }
  }
  if (problem.rows.size() != problem.rhs.size()) {
    return util::InvalidArgumentError("rhs size mismatch");
  }
  Tableau tableau(problem);
  return tableau.Solve();
}

}  // namespace cegraph::lp
