#ifndef CEGRAPH_SERVICE_WIRE_H_
#define CEGRAPH_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/service.h"
#include "util/status.h"

namespace cegraph::service::wire {

/// The cegraph wire protocol, version 3 (see docs/wire_protocol.md):
/// length-prefixed frames over a byte stream, little-endian throughout
/// (util::serde).
///
///   frame    := u32 payload_bytes, payload
///   request  := u8 type, string text [, string dataset]            (v1/v2)
///             | u8 7, u32 count, count x string line [, string dataset]
///   response := u8 code, string error?, u8 type, body? [, string dataset]
///
/// One request frame yields exactly one response frame; a client may
/// pipeline requests on one connection and the server answers strictly in
/// order. `code` is the numeric util::StatusCode (0 = OK); on error the
/// body is absent and `error` carries the status message. Unknown request
/// types are answered with UNIMPLEMENTED, so newer clients degrade
/// cleanly against older servers.
///
/// Version 2 added the optional trailing `dataset` field: a multi-dataset
/// server routes each request to the named dataset's service, and echoes
/// the resolved name back. The field is only encoded when non-empty, so a
/// v2 client not naming a dataset emits byte-identical v1 frames (old
/// servers keep working), and a v1 client's frames decode with an empty
/// dataset and are routed to the server's configurable default dataset.
///
/// Version 3 adds the batch estimate frame (type 7): one request carrying
/// N estimate lines, answered by one response carrying N results in the
/// same order, all priced into admission as a single unit and served from
/// a single epoch — so an optimizer prices a whole join tree in one round
/// trip. v1/v2 frames are untouched, byte for byte, in both directions.
///
/// Version 4 adds an *opt-in* observability extension to kStats
/// responses: a client that sets the stats request's `text` to "v4" gets
/// one extra trailing string after the optional dataset echo, starting
/// with the magic bytes FF 43 47 34 ("\xFF" "CG4") and carrying quantile
/// summaries (request latency, batch sizes, fold durations, per-estimator
/// latency/q-error), admission weight counters, cache rows and the TCP
/// server's counters. Clients that do not opt in — and every pre-v4
/// frame — stay byte-identical to v3 in both directions; the magic byte
/// 0xFF cannot start a dataset name, which is how the decoder tells the
/// two trailing strings apart.
///
/// Version 5 generalizes that trick: trailing strings after the request
/// body / response body are now a *sequence* of fields, each either the
/// (at most one) dataset name or a 0xFF-magic-led extension, in any
/// order; unknown 0xFF magics are skipped, so later revisions can add
/// extensions without breaking v5 peers. Two extensions ship with v5:
///
///   FF 43 47 52 ("\xFF" "CGR")  request-id: u8 ext version, u64 id. A
///     client stamps any request with a nonzero id; the server echoes it
///     on the response and threads it through the slow-request log, the
///     stage trace and the journal — one id, end to end. Requests
///     without an id stay byte-identical to v4 frames.
///
///   FF 43 47 35 ("\xFF" "CG5")  scorecard: per-query-class windowed
///     accuracy rows (hits, under/over split, q-error quantiles,
///     baseline median, drift verdict, worst exemplar) plus the drift
///     gauge and recent request latency/rate. Sent on kStats responses
///     whose request `text` is "v5" (which implies the v4 extension
///     too).
///
///   FF 43 47 36 ("\xFF" "CG6")  corrections: the learned-feedback
///     loop's state — feedback mode, class census, applied/suppressed
///     counters, trailing-minute pre/post-correction q-error summaries
///     and per-class correction rows (key, display, hits, samples,
///     factor, active). Rides the same "v5" kStats opt-in as the
///     scorecard; feedback-unaware peers skip the unknown magic.

/// Upper bound on one frame's payload; larger length prefixes are treated
/// as corruption and fail the connection.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Protocol revision implemented by this build (documentation constant;
/// frames themselves are versionless — v2..v5 are strict,
/// self-delimiting extensions of v1, distinguished per frame by type and
/// trailing fields).
inline constexpr uint32_t kProtocolVersion = 5;

/// The v4 stats-extension opt-in token: a kStats request whose `text`
/// equals this receives the trailing observability extension.
inline constexpr std::string_view kStatsV4Token = "v4";

/// The v5 scorecard opt-in token: a kStats request whose `text` equals
/// this receives the v4 observability extension *and* the v5 scorecard
/// extension.
inline constexpr std::string_view kStatsV5Token = "v5";

enum class MessageType : uint8_t {
  kEstimate = 1,      ///< text: one request line (service::ParseRequestLine)
  kApplyDeltas = 2,   ///< text: a delta feed (dynamic delta text format)
  kSwapSnapshot = 3,  ///< text: server-local snapshot path
  kStats = 4,         ///< text: "" (v3), "v4" (stats ext), "v5" (+scorecard)
  kPing = 5,          ///< text echoed back
  kShutdown = 6,      ///< text unused; server drains and exits
  kBatchEstimate = 7, ///< v3: `lines` carries N estimate lines
};

struct Request {
  MessageType type = MessageType::kPing;
  std::string text;
  /// v2: the dataset this request targets; empty means "the server's
  /// default dataset" and encodes as a v1 frame (no trailing field).
  std::string dataset;
  /// v3 batch frames only (kBatchEstimate): the estimate lines, each in
  /// the same shape a kEstimate `text` would carry; `text` is unused.
  /// (Declared last so pre-v3 `{type, text, dataset}` aggregate
  /// initialization keeps meaning what it says.)
  std::vector<std::string> lines;
  /// v5: client-generated end-to-end request id; 0 = none (and encodes
  /// as a pre-v5 frame, byte for byte).
  uint64_t request_id = 0;
};

/// The decoded answer to one request. `status` is the request-level
/// outcome; exactly one body member is meaningful on OK, selected by
/// `type` (estimate for kEstimate, swap for kApplyDeltas/kSwapSnapshot,
/// stats for kStats, text for kPing/kShutdown, batch for kBatchEstimate).
struct Response {
  util::Status status;
  MessageType type = MessageType::kPing;
  EstimateResponse estimate;
  SwapReport swap;
  ServiceStats stats;
  std::string text;
  /// v3: per-line results of a batch frame, in request order. Each item
  /// carries the status + body its line would have earned as its own v1
  /// estimate frame.
  std::vector<BatchEstimateItem> batch;
  /// v2 echo: the dataset that handled the request. Servers set it only
  /// when the request named one, so v1 clients (which reject trailing
  /// bytes) never see it.
  std::string dataset;
  /// v5 echo: the request's id, returned verbatim. Servers set it only
  /// when the request carried one, so pre-v5 clients never see it.
  uint64_t request_id = 0;
};

std::string EncodeRequest(const Request& request);
util::StatusOr<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
util::StatusOr<Response> DecodeResponse(std::string_view payload);

// ---- Stream framing (POSIX fds; EINTR-safe, full reads/writes) ----

/// Writes one length-prefixed frame.
util::Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame. NotFound with message "connection closed" on a clean
/// EOF at a frame boundary (the normal end of a connection); OutOfRange on
/// mid-frame EOF; InvalidArgument on an implausible length prefix.
util::StatusOr<std::string> ReadFrame(int fd,
                                      uint32_t max_bytes = kMaxFrameBytes);

/// True iff `status` is the clean-EOF marker ReadFrame returns when the
/// peer closed between frames.
bool IsConnectionClosed(const util::Status& status);

// ---- TCP helpers shared by the daemon, the client and the benches ----

/// Connects to host:port. Returns the connected fd (caller closes).
util::StatusOr<int> DialTcp(const std::string& host, int port);

/// Binds and listens on host:port (port 0 = ephemeral). Returns the
/// listening fd (caller closes).
util::StatusOr<int> ListenTcp(const std::string& host, int port,
                              int backlog);

/// The locally bound port of a listening/connected socket.
util::StatusOr<int> BoundPort(int fd);

/// Puts `fd` into non-blocking mode (the event-loop server's sockets).
util::Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm: the protocol's small length-prefixed
/// frames must leave immediately, not wait for ACK coalescing. Applied to
/// both dialed (DialTcp) and accepted (TcpServer) sockets; best-effort.
void SetTcpNoDelay(int fd);

/// Sends `request` and reads the matching response frame — the one-shot
/// client call. Transport failures come back as the outer StatusOr; the
/// server's request-level outcome is Response::status.
util::StatusOr<Response> RoundTrip(int fd, const Request& request);

}  // namespace cegraph::service::wire

#endif  // CEGRAPH_SERVICE_WIRE_H_
