#ifndef CEGRAPH_SERVICE_SERVER_H_
#define CEGRAPH_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "service/catalog.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/status.h"

namespace cegraph::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read the actual one from port())
  /// Worker threads handling connections. Estimation itself runs on the
  /// worker; more workers = more concurrent estimation (the service's
  /// serving states are wait-free for readers, so workers scale).
  int workers = 4;
  int backlog = 128;
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;
};

/// The thread-pool request dispatcher of `cegraph_serve`, reusable
/// in-process (loopback benches, tests): an acceptor thread queues
/// connections, workers drain them frame by frame, every frame gets
/// exactly one response frame. Requests are routed through a
/// DatasetCatalog by their wire `dataset` field (empty = the catalog's
/// default dataset), so one server front-ends many independent
/// EstimationServices. A kShutdown request (or Stop()) drains and joins
/// everything; the catalog/services outlive the server and may be shared
/// by several servers.
class TcpServer {
 public:
  /// Single-dataset convenience: wraps `service` into an internal
  /// one-entry catalog under the name "default".
  TcpServer(EstimationService& service, ServerOptions options = {});
  /// Multi-dataset server over an externally assembled catalog (borrowed;
  /// must outlive the server and not be mutated while serving).
  TcpServer(DatasetCatalog& catalog, ServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and spawns the acceptor + workers. The bound port is
  /// available from port() once Start returns OK.
  util::Status Start();

  int port() const { return port_; }

  /// Closes the listener, drains queued connections, joins all threads.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Blocks until Stop() is called from elsewhere or a client sent
  /// kShutdown. Returns true when the cause was a shutdown request.
  bool WaitUntilShutdown();

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }
  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  wire::Response Dispatch(const wire::Request& request);

  /// Backing store for the single-service constructor; unused otherwise.
  DatasetCatalog single_;
  DatasetCatalog& catalog_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  /// Connections a worker is currently serving; Stop() shuts them down so
  /// reads blocked mid-connection unblock with EOF.
  std::unordered_set<int> active_;
  bool stopping_ = false;
  bool started_ = false;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_SERVER_H_
