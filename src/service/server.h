#ifndef CEGRAPH_SERVICE_SERVER_H_
#define CEGRAPH_SERVICE_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"
#include "service/catalog.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/status.h"

namespace cegraph::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (read the actual one from port())
  /// Worker threads decoding, serving and encoding requests. Estimation
  /// itself runs on the worker; more workers = more concurrent estimation
  /// (the service's serving states are wait-free for readers, so workers
  /// scale). Under kEventLoop this pool is the *only* per-request
  /// concurrency — connections cost file descriptors, not threads.
  int workers = 4;
  int backlog = 128;
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;

  /// How connections are multiplexed onto the worker pool.
  enum class Dispatch {
    /// One epoll I/O thread owns every connection (non-blocking sockets,
    /// incremental frame reassembly) and hands complete request frames to
    /// the worker pool. Thousands of mostly-idle connections cost fds,
    /// not threads. The default.
    kEventLoop,
    /// The original blocking model: an acceptor queues connections and
    /// each worker serves one connection at a time, frame by blocking
    /// frame. Kept as the bench baseline the event loop is gated against.
    kThreadPerConnection,
  };
  Dispatch dispatch = Dispatch::kEventLoop;

  /// kEventLoop: cap on concurrently open connections. An accept beyond
  /// the cap is answered with a retryable RESOURCE_EXHAUSTED error frame
  /// and closed. <= 0 = unbounded.
  int max_connections = 10000;
  /// kEventLoop: per-connection cap on pipelined frames that are decoded
  /// but not yet served (one frame per connection is in the workers at a
  /// time; the rest wait here). An overflowing frame is answered — in
  /// pipeline order — with a retryable RESOURCE_EXHAUSTED error frame
  /// instead of buffering without bound. <= 0 = unbounded.
  int max_pipelined_requests = 128;
  /// kThreadPerConnection: cap on accepted connections waiting for a free
  /// worker (this deque was previously unbounded). Beyond the cap the
  /// connection is answered with a retryable RESOURCE_EXHAUSTED error
  /// frame and closed. <= 0 = unbounded.
  int max_queued_connections = 1024;

  /// kEventLoop: requests slower than this (queue wait through handoff,
  /// as seen by the worker) are logged to stderr with their per-stage
  /// breakdown and request id, rate-limited by slow_log_per_sec so a
  /// saturated server cannot flood its own log. <= 0 disables the slow
  /// log.
  int slow_request_millis = 0;
  /// Cap on slow-request log lines (and journal "slow_request" events)
  /// per second. <= 0 removes the limiter entirely — every slow request
  /// is logged.
  double slow_log_per_sec = 1.0;
  /// Optional structured event journal (borrowed; must outlive the
  /// server). The server emits "shed" events at every overload-rejection
  /// site and "slow_request" events alongside the stderr slow log.
  obs::Journal* journal = nullptr;
};

/// The request dispatcher of `cegraph_serve`, reusable in-process
/// (loopback benches, tests). Under the default kEventLoop mode a single
/// I/O thread multiplexes every connection through epoll — non-blocking
/// sockets, per-connection read/write buffers reassembling length-
/// prefixed frames incrementally — and hands complete requests to a
/// fixed worker pool; responses on one connection are delivered strictly
/// in request order, so clients may pipeline. Requests are routed
/// through a DatasetCatalog by their wire `dataset` field (empty = the
/// catalog's default dataset), so one server front-ends many independent
/// EstimationServices. A kShutdown request (or Stop()) drains and joins
/// everything; the catalog/services outlive the server and may be shared
/// by several servers.
class TcpServer {
 public:
  /// Single-dataset convenience: wraps `service` into an internal
  /// one-entry catalog under the name "default".
  TcpServer(EstimationService& service, ServerOptions options = {});
  /// Multi-dataset server over an externally assembled catalog (borrowed;
  /// must outlive the server and not be mutated while serving).
  TcpServer(DatasetCatalog& catalog, ServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and spawns the I/O + worker threads. The bound port
  /// is available from port() once Start returns OK.
  util::Status Start();

  int port() const { return port_; }

  /// Closes the listener, tears down connections, joins all threads.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Blocks until Stop() is called from elsewhere or a client sent
  /// kShutdown. Returns true when the cause was a shutdown request.
  bool WaitUntilShutdown();

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }
  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Connections or pipelined frames refused with a retryable error frame
  /// — the sum of the three per-bound shed counters below.
  uint64_t overload_rejections() const {
    return shed_connection_cap() + shed_pipeline_cap() + shed_queue_cap();
  }
  /// Accepts refused at the kEventLoop --max-connections bound.
  uint64_t shed_connection_cap() const {
    return shed_connection_cap_.load(std::memory_order_relaxed);
  }
  /// Pipelined frames refused at the per-connection pipeline depth.
  uint64_t shed_pipeline_cap() const {
    return shed_pipeline_cap_.load(std::memory_order_relaxed);
  }
  /// Legacy accept-queue refusals (kThreadPerConnection only).
  uint64_t shed_queue_cap() const {
    return shed_queue_cap_.load(std::memory_order_relaxed);
  }
  /// Times a connection's out-buffer crossed the high-water mark and the
  /// I/O thread stopped reading it (backpressure engaged).
  uint64_t backpressure_events() const {
    return backpressure_events_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_out() const {
    return bytes_out_.load(std::memory_order_relaxed);
  }

 private:
  // ---- shared ----
  wire::Response Dispatch(const wire::Request& request);
  /// Stamps this server's counters into a stats response (Dispatch's
  /// kStats path; `present` marks them valid for the wire encoder).
  void FillServerCounters(ServiceStats& stats) const;
  /// Counts one decoded request frame by type.
  void CountFrame(const util::StatusOr<wire::Request>& request);
  /// Registers / removes the server's Prometheus collector.
  void RegisterMetrics();
  void NotifyShutdownRequested();
  /// The pre-encoded retryable refusal payload for overload rejections.
  std::string EncodeOverloadReject(const std::string& what);
  /// Journals one overload rejection (no-op without a journal).
  void EmitShedEvent(const char* reason, int cap);

  // ---- event loop (kEventLoop) ----
  /// One connection's multiplexing state. Owned and mutated by the I/O
  /// thread only; workers refer to connections by id, never by pointer.
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    uint32_t epoll_events = 0;  ///< interest set currently registered

    std::string in;      ///< raw bytes read, not yet consumed
    size_t in_pos = 0;   ///< parse offset into `in`

    /// A decoded-but-unserved pipelined frame. `rejected` entries carry a
    /// pre-encoded response payload (pipeline-cap refusals, protocol
    /// errors) that is emitted when the entry reaches the front — which
    /// is what keeps responses in request order.
    struct PendingFrame {
      std::string payload;
      bool rejected = false;
    };
    std::deque<PendingFrame> pending;
    bool busy = false;  ///< one frame from this conn is in the workers

    std::string out;     ///< encoded frames awaiting the socket
    size_t out_pos = 0;  ///< flush offset into `out`

    bool draining = false;          ///< peer EOF / protocol error: no more reads
    bool close_after_flush = false; ///< close once pending + out are empty
  };

  /// A complete request frame travelling I/O thread -> worker.
  struct WorkItem {
    uint64_t conn_id = 0;
    std::string payload;
    int64_t enqueue_micros = 0;  ///< queued-for-workers timestamp
  };
  /// An encoded response frame travelling worker -> I/O thread.
  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;  ///< length prefix + payload, ready for the socket
    bool shutdown = false;
    int64_t handoff_micros = 0;  ///< worker pushed it; kWrite = until queued
  };

  /// Emits the rate-limited slow-request stderr line when the request
  /// exceeded options_.slow_request_millis.
  void MaybeLogSlowRequest(const WorkItem& item, const obs::StageTrace& trace,
                           int64_t done_micros);

  void IoLoop();
  void EventWorkerLoop();
  void HandleAccept();
  void HandleReadable(Conn& conn);
  void HandleWritable(Conn& conn);
  void ParseFrames(Conn& conn);
  /// Emits front-of-queue rejected entries and dispatches the next real
  /// frame when the connection is idle.
  void PumpConn(Conn& conn);
  void FlushConn(Conn& conn);
  void UpdateInterest(Conn& conn);
  void CloseConn(Conn& conn);
  void HandleCompletions();
  void WakeIo();

  // ---- thread-per-connection (kThreadPerConnection) ----
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  /// Backing store for the single-service constructor; unused otherwise.
  DatasetCatalog single_;
  DatasetCatalog& catalog_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;

  // Event-loop plumbing.
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: workers (and Stop) kick epoll_wait
  std::thread io_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;  // I/O thread only
  /// epoll user-data tags 0/1 mark the listener / wake eventfd.
  uint64_t next_conn_id_ = 2;
  std::atomic<bool> event_stop_{false};

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  // Legacy plumbing (also reused for started/stopping bookkeeping).
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  /// Connections a legacy worker is currently serving; Stop() shuts them
  /// down so reads blocked mid-connection unblock with EOF.
  std::unordered_set<int> active_;
  bool stopping_ = false;
  bool started_ = false;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};

  // Observability counters (all relaxed; see the accessor docs).
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> shed_connection_cap_{0};
  std::atomic<uint64_t> shed_pipeline_cap_{0};
  std::atomic<uint64_t> shed_queue_cap_{0};
  std::atomic<uint64_t> backpressure_events_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> frames_estimate_{0};
  std::atomic<uint64_t> frames_batch_{0};
  std::atomic<uint64_t> frames_other_{0};
  /// Per-stage latency distributions across every event-loop request
  /// (indexed by obs::Stage). Recorded only when obs::MetricsEnabled().
  std::array<obs::Histogram, obs::kStageCount> stage_hist_;
  /// Slow-log rate limiting: micros timestamp of the last emitted line.
  std::atomic<int64_t> last_slow_log_micros_{0};
  /// Collector handle in MetricsRegistry::Global() (0 = not registered).
  uint64_t metrics_collector_id_ = 0;
};

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_SERVER_H_
