#ifndef CEGRAPH_SERVICE_ADMISSION_H_
#define CEGRAPH_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstdint>

namespace cegraph::service {

/// Cost-aware admission control for the estimation service: a fixed pool
/// of *capacity units*, acquired per request in proportion to the work it
/// carries and released when the response is built. A plain estimate
/// weighs its pattern size; a batch frame weighs the sum of its lines —
/// so one batch of 64 estimates occupies the same share of the service as
/// 64 single-frame clients, and a flood of heavyweight frames saturates
/// admission earlier than a trickle of cheap pings would. Saturation
/// sheds load instead of queueing it — estimation is pure CPU, so queued
/// requests only add latency for everyone; the caller gets the retryable
/// ResourceExhausted and retries (against this replica later, or a less
/// loaded one).
///
/// Admission rule: a request is admitted while the units currently in
/// flight are *below* capacity, and then charges its full weight — so a
/// single request heavier than the whole capacity still gets through on
/// an idle service (it simply blocks others until it releases), and the
/// pool can transiently overshoot by at most one request's weight.
///
/// Lock-free: one CAS-loop counter on the hot path, plus relaxed
/// accounting counters for observability.
class AdmissionController {
 public:
  /// `capacity` <= 0 means unbounded (admission always succeeds).
  explicit AdmissionController(int64_t capacity) : capacity_(capacity) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII in-flight claim. Falsy when admission was refused.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(AdmissionController* owner, int64_t weight)
        : owner_(owner), weight_(weight) {}
    Ticket(Ticket&& other) noexcept
        : owner_(other.owner_), weight_(other.weight_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        weight_ = other.weight_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    explicit operator bool() const { return owner_ != nullptr; }
    int64_t weight() const { return weight_; }

   private:
    void Release() {
      if (owner_ != nullptr) {
        owner_->Exit(weight_);
        owner_ = nullptr;
      }
    }
    AdmissionController* owner_ = nullptr;
    int64_t weight_ = 0;
  };

  /// Tries to claim `weight` capacity units (clamped up to 1). A falsy
  /// ticket means the service is saturated; the rejection counter has
  /// been bumped.
  Ticket TryAdmit(int64_t weight = 1);

  int64_t capacity() const { return capacity_; }
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Total capacity units granted to admitted requests / refused to
  /// rejected ones — the weight-denominated view of admitted()/rejected()
  /// (a rejected batch of 64 lines adds 64 here but 1 there).
  uint64_t admitted_weight() const {
    return admitted_weight_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_weight() const {
    return rejected_weight_.load(std::memory_order_relaxed);
  }
  int64_t peak_in_flight() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void Exit(int64_t weight) {
    in_flight_.fetch_sub(weight, std::memory_order_release);
  }
  void UpdatePeak(int64_t candidate);

  const int64_t capacity_;
  std::atomic<int64_t> in_flight_{0};  ///< capacity units, not requests
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> admitted_weight_{0};
  std::atomic<uint64_t> rejected_weight_{0};
};

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_ADMISSION_H_
