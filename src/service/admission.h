#ifndef CEGRAPH_SERVICE_ADMISSION_H_
#define CEGRAPH_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstdint>

namespace cegraph::service {

/// Bounded-concurrency admission control for the estimation service: a
/// fixed pool of in-flight slots, acquired per request and released when
/// the response is built. Saturation sheds load instead of queueing it —
/// an estimation request is pure CPU, so queued requests only add latency
/// for everyone; the caller gets ResourceExhausted and retries against a
/// less loaded replica.
///
/// Lock-free: one CAS-loop counter on the hot path, plus relaxed
/// accounting counters for observability.
class AdmissionController {
 public:
  /// `max_in_flight` <= 0 means unbounded (admission always succeeds).
  explicit AdmissionController(int max_in_flight)
      : max_in_flight_(max_in_flight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII in-flight slot. Falsy when admission was refused.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* owner) : owner_(owner) {}
    Ticket(Ticket&& other) noexcept : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    explicit operator bool() const { return owner_ != nullptr; }

   private:
    void Release() {
      if (owner_ != nullptr) {
        owner_->Exit();
        owner_ = nullptr;
      }
    }
    AdmissionController* owner_ = nullptr;
  };

  /// Tries to claim an in-flight slot. A falsy ticket means the service is
  /// saturated; the rejection counter has been bumped.
  Ticket TryAdmit();

  int max_in_flight() const { return max_in_flight_; }
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  int64_t peak_in_flight() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void Exit() { in_flight_.fetch_sub(1, std::memory_order_release); }
  void UpdatePeak(int64_t candidate);

  const int max_in_flight_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_ADMISSION_H_
