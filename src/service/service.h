#ifndef CEGRAPH_SERVICE_SERVICE_H_
#define CEGRAPH_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dynamic/delta_graph.h"
#include "dynamic/stats_maintainer.h"
#include "engine/engine.h"
#include "graph/graph.h"
#include "learn/feedback_store.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/scorecard.h"
#include "obs/windowed.h"
#include "service/admission.h"
#include "service/request.h"
#include "util/status.h"

namespace cegraph::service {

/// One immutable unit of serving: an engine (context + memoized estimator
/// instances) over one graph epoch, plus the resolved estimator suite.
/// States are published through an atomic shared_ptr and never mutated
/// after publication, so a reader that acquired a state can finish its
/// whole request against it — estimators, statistics and graph all from
/// the same epoch — while the maintainer builds and publishes successors.
struct ServingState {
  std::unique_ptr<engine::EstimationEngine> engine;
  /// The serving estimator suite, resolved once; pointers are owned by
  /// `engine` and live exactly as long as this state.
  std::vector<const CardinalityEstimator*> suite;
  std::vector<std::string> names;
  /// The context's learned-feedback store, pinned here so serve-time
  /// lookups and recording skip the context mutex. Shared across delta
  /// folds (ForkWithDeltas carries the pointer) and across hot-swaps of
  /// same-base-graph snapshots, so learning survives both.
  std::shared_ptr<learn::FeedbackStore> feedback;
  uint64_t epoch = 0;          ///< engine->context().epoch()
  uint64_t version = 0;        ///< hot-swap generation (0 = initial state)
};

/// How the service uses the learned-feedback store (docs/learned_feedback.md).
enum class FeedbackMode {
  kOff,     ///< no corrections applied, no learning (pre-feedback behavior)
  kOn,      ///< corrections applied when a class has support; truths recorded
  kFrozen,  ///< corrections applied; learning paused (truths not recorded)
};

struct ServiceOptions {
  /// The estimator suite every request runs. Must resolve against the
  /// default registry at Create time.
  std::vector<std::string> estimators = {"max-hop-max", "all-hops-avg",
                                         "molp", "cbs", "cs"};
  engine::ContextOptions context;
  /// Admission capacity in *weight units* (cost-aware
  /// AdmissionController): each estimate charges its pattern size, a
  /// batch the sum of its lines, so heavyweight traffic saturates
  /// admission proportionally sooner. <= 0 = unbounded.
  int max_in_flight = 4096;
  /// Background compaction trigger: when this many pending delta
  /// operations have accumulated, the maintainer thread folds them into a
  /// new serving state. <= 0 disables the background thread (deltas apply
  /// only on FlushDeltas).
  int compact_trigger_ops = 4096;
  /// Replay-log retention: after each successful hot-swap the new state's
  /// log is trimmed so only the last `replay_keep_epochs` epochs stay
  /// replayable (snapshot staleness window). < 0 disables trimming.
  int replay_keep_epochs = 8;
  /// Prewarm the initial state's statistics for this workload before
  /// serving (optional; empty = lazy).
  std::vector<query::WorkloadQuery> prewarm_workload;
  /// Load this snapshot into the initial state (optional). The snapshot
  /// may describe a later epoch of the base graph — its embedded delta
  /// log is replayed, exactly like `cegraph_stats` consumers do.
  std::string initial_snapshot;
  /// Label stamped as `dataset="..."` on every Prometheus series this
  /// service exports (the catalog sets it to the dataset name). Empty =
  /// unlabeled series; the service still registers with the global
  /// MetricsRegistry either way.
  std::string metrics_label;
  /// Per-query-class accuracy scorecards (windowed q-error, under/over
  /// split, worst exemplar, drift). Recording happens only for
  /// truth-carrying requests and only when obs::MetricsEnabled().
  obs::ScorecardOptions scorecard;
  /// Structured event journal (swaps, folds, drift flips land here when
  /// set). Borrowed, not owned; must outlive the service. The daemon
  /// wires one per process via `cegraph_serve --journal FILE`.
  obs::Journal* journal = nullptr;
  /// Learned-feedback corrections (AQO-style estimate->truth loop; see
  /// docs/learned_feedback.md). kOff keeps serving bit-identical to a
  /// pre-feedback build. The daemon wires `cegraph_serve --feedback`.
  FeedbackMode feedback = FeedbackMode::kOff;
  /// Knobs of the per-class correction learner (gate, decay, bounds).
  learn::FeedbackOptions feedback_options;
};

/// Breakdown of the snapshot load behind a state: how the artifact was
/// opened (mmap vs parse) and how long each phase took. All zero until a
/// snapshot load has happened. Mirrors
/// engine::EstimationContext::SnapshotLoadReport.
struct SnapshotLoadBreakdown {
  bool loaded = false;        ///< a snapshot load backed this state
  bool mapped = false;        ///< arena sections attached zero-copy
  uint64_t mapped_bytes = 0;  ///< arena bytes backing the load
  double map_millis = 0;      ///< open phase: mmap / read + integrity checks
  double parse_millis = 0;    ///< apply phase: parse / attach / merge
  uint64_t snapshot_epoch = 0;
};

/// What one delta application / hot-swap did.
struct SwapReport {
  uint64_t epoch = 0;    ///< epoch of the newly published state
  uint64_t version = 0;  ///< version of the newly published state
  size_t applied_ops = 0;
  size_t trimmed_log_ops = 0;
  dynamic::MaintenanceReport maintenance;
  /// Snapshot swaps only: whether the artifact loaded stale and how many
  /// embedded deltas were replayed to reconstruct its graph.
  bool snapshot_stale = false;
  size_t snapshot_replayed_deltas = 0;
  /// Snapshot swaps only: open/apply phase breakdown of the load.
  SnapshotLoadBreakdown snapshot_load;
};

/// Aggregate accounting, cheap enough to sample per scrape.
struct ServiceStats {
  uint64_t served = 0;           ///< responses returned
  uint64_t rejected = 0;         ///< admission refusals
  uint64_t request_errors = 0;   ///< unparseable / invalid requests
  uint64_t swaps = 0;            ///< published states beyond the initial
  uint64_t epoch = 0;            ///< current serving epoch
  uint64_t version = 0;          ///< current state version
  size_t pending_delta_ops = 0;  ///< submitted but not yet applied
  size_t replay_log_ops = 0;     ///< surviving replay-log length
  uint64_t min_replayable_epoch = 0;
  int64_t in_flight = 0;
  int64_t peak_in_flight = 0;
  double mean_latency_micros = 0;  ///< over served requests
  /// Per-estimator accounting over every served request.
  struct EstimatorAccounting {
    std::string name;
    uint64_t requests = 0;
    uint64_t failures = 0;
    double mean_micros = 0;
    /// Mean q-error over requests that carried ground truth and produced
    /// a usable sample (finite, positive); 0 when none did. Failed or
    /// degenerate estimates (0 / inf / NaN q-error) are excluded — an
    /// error must not skew the aggregate.
    double mean_qerror = 0;
    /// Distribution readouts (v4 wire extension / Prometheus). Zero when
    /// the metrics layer is disabled.
    obs::QuantileSummary latency;  ///< per-call micros
    obs::QuantileSummary qerror;   ///< truth-carrying successes only
  };
  std::vector<EstimatorAccounting> estimators;
  /// The most recent snapshot load (Create's initial load or the latest
  /// HotSwapSnapshot); `loaded` false when the service never loaded one.
  SnapshotLoadBreakdown snapshot_load;

  // --- v4 observability extension (docs/wire_protocol.md §v4) ---
  /// True when this stats object carries (or should carry, on encode)
  /// the v4 trailing extension. Decoders set it when the extension was
  /// present; the server sets it when the client opted in.
  bool v4_wire = false;
  obs::QuantileSummary latency;     ///< request latency micros
  obs::QuantileSummary batch_lines; ///< lines per v3 batch frame
  obs::QuantileSummary fold_millis; ///< delta fold / compaction durations
  uint64_t admitted_weight = 0;     ///< capacity units granted
  uint64_t rejected_weight = 0;     ///< capacity units refused
  uint64_t snapshot_loads = 0;      ///< successful snapshot loads
  /// Statistics-cache residency and hit/miss/evict counters of the
  /// current serving state (CegCache + every KeyedCache).
  struct CacheRow {
    std::string name;
    uint64_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  std::vector<CacheRow> caches;
  /// TCP-server-level counters, injected by the server when answering a
  /// stats frame (`present` false for the embedded in-process service).
  struct ServerCounters {
    bool present = false;
    uint64_t connections_accepted = 0;
    uint64_t connections_active = 0;
    uint64_t shed_connection_cap = 0;  ///< rejections at --max-connections
    uint64_t shed_pipeline_cap = 0;    ///< rejections at the pipeline depth
    uint64_t shed_queue_cap = 0;       ///< legacy accept-queue rejections
    uint64_t backpressure_events = 0;  ///< out-buffer high-water crossings
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t frames_estimate = 0;
    uint64_t frames_batch = 0;
    uint64_t frames_other = 0;
  };
  ServerCounters server;

  // --- v5 scorecard extension (docs/wire_protocol.md §v5) ---
  /// True when this stats object carries (or should carry, on encode)
  /// the v5 trailing scorecard extension; implies v4_wire on encode.
  bool scorecard_wire = false;
  bool any_drift = false;  ///< any class currently flagged as drifted
  /// Window the scorecard rows (and latency_1m below) were read over.
  int64_t scorecard_window_seconds = 0;
  /// Request latency over the trailing minute — the "what is the server
  /// doing *lately*" counterpart of the lifetime `latency` summary.
  obs::QuantileSummary latency_1m;
  double rate_1m = 0;  ///< served requests/sec over the trailing minute
  /// Per-query-class rows, sorted by hits descending (ties: key
  /// ascending). Filled only by Stats(/*with_scorecard=*/true).
  std::vector<obs::ScorecardClassReport> scorecard;

  // --- v5 corrections extension (docs/wire_protocol.md §corrections) ---
  /// True when this stats object carries (or should carry, on encode)
  /// the corrections trailing extension; rides the same v5 opt-in as
  /// the scorecard.
  bool corrections_wire = false;
  FeedbackMode feedback_mode = FeedbackMode::kOff;
  uint64_t feedback_classes = 0;    ///< classes with any observations
  uint64_t feedback_active = 0;     ///< classes past the confidence gate
  uint64_t feedback_evictions = 0;  ///< classes dropped at the bound
  uint64_t corrections_applied = 0;    ///< served estimates scaled
  uint64_t corrections_suppressed = 0; ///< active correction skipped (opt-out)
  /// Trailing-minute q-error of truth-carrying results, before and
  /// after correction — the live readout of whether the loop helps.
  obs::QuantileSummary qerror_raw_1m;
  obs::QuantileSummary qerror_corrected_1m;
  /// Per-class learned corrections, sorted by hits descending (ties:
  /// key ascending). Filled only by Stats(/*with_scorecard=*/true).
  std::vector<learn::FeedbackClassReport> corrections;
};

/// A long-lived, concurrently readable estimation server over one base
/// graph: the embeddable core behind the `cegraph_serve` daemon.
///
/// Readers (Estimate/EstimateLine, any thread) are wait-free with respect
/// to maintenance: each request atomically acquires the current
/// ServingState (shared_ptr load) and runs entirely against it. The
/// maintainer builds the *next* state off to the side —
/// EstimationContext::ForkWithDeltas for delta ingestion, a fresh
/// context + snapshot load for hot-swaps — and publishes it with one
/// atomic store. In-flight requests keep the old state alive through
/// their shared_ptr; ApplyDeltas' quiescence requirement is met because
/// the live state is never mutated at all.
///
/// Maintenance (SubmitDeltas auto-compaction, FlushDeltas,
/// HotSwapSnapshot) is single-writer, serialized on an internal mutex;
/// any thread may call it. After each successful swap the new state's
/// replay log is trimmed to the configured retention window.
class EstimationService {
 public:
  /// Builds the initial serving state (resolving the estimator suite,
  /// optionally loading `options.initial_snapshot` and prewarming) and
  /// starts the background maintainer if configured.
  static util::StatusOr<std::unique_ptr<EstimationService>> Create(
      std::shared_ptr<const graph::Graph> base_graph,
      ServiceOptions options = {});
  static util::StatusOr<std::unique_ptr<EstimationService>> Create(
      graph::Graph&& base_graph, ServiceOptions options = {});

  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Serves one request against the current state. ResourceExhausted when
  /// admission is refused, InvalidArgument when the query names a label
  /// the graph does not have; per-estimator failures land inside the
  /// response. Thread-safe, lock-free against maintenance.
  util::StatusOr<EstimateResponse> Estimate(
      const EstimateRequest& request) const;

  /// ParseRequestLine + Estimate. Parse failures count as request errors.
  util::StatusOr<EstimateResponse> EstimateLine(std::string_view line) const;

  /// Serves one wire-v3 batch: N request lines admitted as ONE unit (the
  /// summed weight of the parseable lines) and answered in order against
  /// ONE serving state, so every item in a batch shares a single epoch.
  /// The outer status is the frame-level outcome — ResourceExhausted when
  /// admission refuses the whole batch (retryable), InvalidArgument for an
  /// empty batch; per-line failures (parse, label range) land inside their
  /// item, exactly as the same line would have failed as its own v1 frame.
  util::StatusOr<std::vector<BatchEstimateItem>> EstimateBatch(
      const std::vector<std::string>& lines) const;

  /// The pre-parsed twin (harness drivers): same admission and single-state
  /// contract; `requests` are borrowed for the call.
  util::StatusOr<std::vector<BatchEstimateItem>> EstimateBatch(
      const std::vector<const EstimateRequest*>& requests) const;

  /// Queues delta operations for ingestion. The batch is applied by the
  /// background maintainer once pending volume reaches
  /// options.compact_trigger_ops, or synchronously via FlushDeltas.
  /// Validated here, against the fixed vertex/label spaces of the base
  /// graph: an invalid batch is rejected whole and nothing is queued.
  /// Pending batches from different submitters are folded into one swap,
  /// so rejecting at the door is what keeps one submitter's bad feed from
  /// sinking another's valid one.
  util::Status SubmitDeltas(std::vector<dynamic::EdgeDelta> batch);

  /// Applies everything pending right now (building and publishing a new
  /// state). OK with unchanged epoch when nothing was pending.
  util::StatusOr<SwapReport> FlushDeltas();

  /// Replaces the serving state with the snapshot at `path`: a fresh
  /// context over the base graph, the snapshot loaded into it (replaying
  /// its embedded delta log when it describes a later epoch), the suite
  /// re-resolved, published atomically. In-flight requests finish against
  /// the old state; pending (unapplied) deltas stay pending. Live deltas
  /// applied since the service started are superseded by the artifact —
  /// a snapshot swap *rebases* the service onto it.
  util::StatusOr<SwapReport> HotSwapSnapshot(const std::string& path);

  /// The current serving state (for drivers/benches that want to pin an
  /// epoch or inspect the engine). Holding the returned pointer keeps that
  /// state alive across swaps.
  std::shared_ptr<const ServingState> AcquireState() const {
    return state_.load(std::memory_order_acquire);
  }

  uint64_t epoch() const { return AcquireState()->epoch; }
  /// Aggregate accounting. `with_scorecard` additionally materializes
  /// the per-class scorecard rows (a window merge per class — cheap per
  /// scrape, not per request) and marks the result for the v5 wire
  /// extension.
  ServiceStats Stats(bool with_scorecard = false) const;
  const ServiceOptions& options() const { return options_; }

 private:
  EstimationService(std::shared_ptr<const graph::Graph> base_graph,
                    ServiceOptions options);

  /// Builds a state around `context` (resolves the suite, stamps
  /// epoch/version) without publishing it.
  util::StatusOr<std::shared_ptr<ServingState>> MakeState(
      std::unique_ptr<engine::EstimationContext> context, uint64_t version);

  /// The admitted body of Estimate: runs `request` against `state`
  /// (label validation, estimator loop, accounting) without touching
  /// admission — shared by the single and batch paths so a batched line
  /// answers bit-identically to its own v1 frame.
  util::StatusOr<EstimateResponse> EstimateOnState(
      const ServingState& state, const EstimateRequest& request) const;

  /// Admitted batch body shared by both EstimateBatch overloads:
  /// `parsed[i]` is null when the line failed before estimation, with
  /// `errors[i]` carrying that line's status.
  std::vector<BatchEstimateItem> RunBatchOnCurrentState(
      const std::vector<const EstimateRequest*>& parsed,
      const std::vector<util::Status>& errors) const;

  /// Trims the (not yet published) state's replay log to the retention
  /// window; returns ops dropped.
  size_t TrimForRetention(engine::EstimationContext& context) const;

  /// Publishes and bumps the swap counter.
  void Publish(std::shared_ptr<const ServingState> state);

  /// Registers this service's Prometheus collector with the global
  /// registry (labeled by options_.metrics_label).
  void RegisterMetrics();

  /// Maintainer body for one pending batch. Caller holds maintenance_mutex_.
  util::StatusOr<SwapReport> ApplyBatchLocked(
      std::vector<dynamic::EdgeDelta> batch);

  void MaintainerLoop();

  std::shared_ptr<const graph::Graph> base_graph_;
  ServiceOptions options_;

  std::atomic<std::shared_ptr<const ServingState>> state_;
  mutable AdmissionController admission_;

  /// Single-writer maintenance: fork/load + publish.
  std::mutex maintenance_mutex_;

  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::vector<dynamic::EdgeDelta> pending_;
  bool stopping_ = false;
  std::thread maintainer_;

  /// Latest snapshot-load breakdown (written at Create / HotSwapSnapshot,
  /// sampled by Stats); own mutex because maintenance_mutex_ is held for
  /// the whole — potentially long — swap.
  mutable std::mutex load_mutex_;
  SnapshotLoadBreakdown last_load_;

  // Accounting. All-relaxed atomics: the estimate hot path must stay
  // lock-free (the worker-scaling gate of bench_service_throughput), so
  // per-estimator sums shard per counter instead of sharing a mutex.
  mutable std::atomic<uint64_t> served_{0};
  mutable std::atomic<uint64_t> request_errors_{0};
  mutable std::atomic<uint64_t> latency_micros_total_{0};
  std::atomic<uint64_t> swaps_{0};
  struct EstimatorAccum {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<double> micros{0};
    std::atomic<uint64_t> truth_requests{0};
    std::atomic<double> qerror_sum{0};
    /// Distribution counterparts of the means above; recorded only when
    /// obs::MetricsEnabled() (the histograms are the new per-request
    /// cost the overhead gate bounds).
    obs::Histogram latency_hist;
    obs::Histogram qerror_hist;
  };
  /// Sized once at construction (vector growth would need moves, which
  /// atomics forbid).
  mutable std::vector<EstimatorAccum> accounting_;

  /// Request-level distributions (see EstimatorAccum note on gating).
  mutable obs::Histogram request_latency_hist_;
  mutable obs::Histogram batch_lines_hist_;
  obs::Histogram fold_millis_hist_;
  /// Windowed twin of request_latency_hist_: recent (1m/5m/15m)
  /// latency quantiles and request rates for Prometheus and the stats
  /// extension.
  mutable obs::WindowedHistogram request_latency_window_;
  /// Per-query-class accuracy accounting; baseline re-stamped at
  /// snapshot load / hot swap (never at delta folds — a fold is the
  /// same regime, a swap is a new one).
  mutable obs::Scorecard scorecard_;
  /// Attributes every usable truth-carrying estimator result of
  /// `response` to the request's query class.
  void RecordScorecard(const EstimateRequest& request,
                       const EstimateResponse& response) const;
  /// Feeds every usable truth-carrying result's RAW estimate into the
  /// feedback store (kOn only) and emits `correction_update` journal
  /// events for gate crossings / large moves. `class_code` is the
  /// query-class identity QueryClassCode computed once per request.
  void RecordFeedback(learn::FeedbackStore& store,
                      const EstimateRequest& request,
                      const EstimateResponse& response,
                      const std::string& class_code) const;
  /// Per-request correction accounting (relaxed; see EstimatorAccum).
  mutable std::atomic<uint64_t> corrections_applied_{0};
  mutable std::atomic<uint64_t> corrections_suppressed_{0};
  /// Trailing-window q-error of truth-carrying results before/after
  /// correction (recorded only when feedback is not kOff and
  /// obs::MetricsEnabled()).
  mutable obs::WindowedHistogram qerror_raw_window_;
  mutable obs::WindowedHistogram qerror_corrected_window_;
  /// Emits to options_.journal when set (dataset stamped); else no-op.
  void EmitJournal(obs::JournalEvent event) const;
  std::atomic<uint64_t> snapshot_loads_{0};
  /// Handle of this service's collector in MetricsRegistry::Global()
  /// (0 = not registered). Registered at the end of Create, removed
  /// first thing in the destructor.
  uint64_t metrics_collector_id_ = 0;
};

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_SERVICE_H_
