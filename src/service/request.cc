#include "service/request.h"

#include <cstdlib>

#include "query/parser.h"

namespace cegraph::service {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view NextToken(std::string_view& s) {
  s = Trim(s);
  size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  std::string_view token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

}  // namespace

util::StatusOr<EstimateRequest> ParseRequestLine(std::string_view line) {
  std::string_view rest = Trim(line);
  if (rest.empty() || rest.front() == '#') {
    return util::InvalidArgumentError(
        "empty request line (comments are not requests)");
  }

  EstimateRequest request;
  if (rest.front() != '(') {
    // Workload-file shape: <template> <truth> <pattern>.
    const std::string_view name = NextToken(rest);
    const std::string_view truth_text = NextToken(rest);
    rest = Trim(rest);
    if (truth_text.empty() || rest.empty()) {
      return util::InvalidArgumentError(
          "request line must be a '(v)-[l]->(w); ...' pattern or a workload "
          "line '<template> <truth> <pattern>', got: " +
          std::string(line));
    }
    char* end = nullptr;
    const std::string truth_str(truth_text);
    const double truth = std::strtod(truth_str.c_str(), &end);
    if (end == nullptr || *end != '\0' || truth < 0) {
      return util::InvalidArgumentError("unparseable true cardinality '" +
                                        truth_str + "' in request line");
    }
    request.template_name = std::string(name);
    request.truth = truth;
  }

  request.pattern = std::string(rest);
  auto query = query::ParseQuery(rest);
  if (!query.ok()) return query.status();
  if (!query->IsConnected()) {
    return util::InvalidArgumentError(
        "request pattern must be connected: " + request.pattern);
  }
  request.query = std::move(*query);
  return request;
}

int64_t RequestWeight(const query::QueryGraph& query) {
  const int64_t edges = static_cast<int64_t>(query.edges().size());
  return edges < 1 ? 1 : edges;
}

}  // namespace cegraph::service
