#include "service/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <sstream>
#include <utility>

#include "dynamic/delta_io.h"
#include "obs/metrics.h"
#include "obs/stage_trace.h"

namespace cegraph::service {

namespace {

/// Monotonic microseconds for queue-wait / stage timing.
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// epoll user-data tags for the two non-connection fds; connection ids
/// start at 2 (see next_conn_id_).
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

/// Above this many unflushed response bytes the I/O thread stops reading
/// a connection (drops EPOLLIN interest) until the peer drains its
/// socket: a pipelining client that never reads cannot grow `out`
/// without bound.
constexpr size_t kOutHighWater = 4u << 20;

/// Appends one length-prefixed frame (the wire framing: LE u32 payload
/// size, payload) to an output buffer.
void AppendFrame(std::string& out, std::string_view payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  const char prefix[4] = {
      static_cast<char>(n & 0xff), static_cast<char>((n >> 8) & 0xff),
      static_cast<char>((n >> 16) & 0xff), static_cast<char>((n >> 24) & 0xff)};
  out.append(prefix, sizeof prefix);
  out.append(payload.data(), payload.size());
}

}  // namespace

TcpServer::TcpServer(EstimationService& service, ServerOptions options)
    : catalog_(single_), options_(std::move(options)) {
  // A one-entry borrowed catalog cannot fail to assemble.
  (void)single_.AddBorrowed("default", &service);
}

TcpServer::TcpServer(DatasetCatalog& catalog, ServerOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

util::Status TcpServer::Start() {
  if (started_) return util::FailedPreconditionError("server already started");
  auto fd = wire::ListenTcp(options_.host, options_.port, options_.backlog);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  auto port = wire::BoundPort(listen_fd_);
  if (!port.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  const int workers = options_.workers < 1 ? 1 : options_.workers;

  if (options_.dispatch == ServerOptions::Dispatch::kEventLoop) {
    auto fail = [this](util::Status status) {
      if (epoll_fd_ >= 0) ::close(epoll_fd_);
      if (wake_fd_ >= 0) ::close(wake_fd_);
      epoll_fd_ = wake_fd_ = -1;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    };
    if (auto status = wire::SetNonBlocking(listen_fd_); !status.ok()) {
      return fail(status);
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return fail(util::InternalError(std::string("epoll_create1: ") +
                                      std::strerror(errno)));
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return fail(
          util::InternalError(std::string("eventfd: ") + std::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return fail(util::InternalError(std::string("epoll_ctl(listen): ") +
                                      std::strerror(errno)));
    }
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return fail(util::InternalError(std::string("epoll_ctl(wake): ") +
                                      std::strerror(errno)));
    }
    work_.clear();
    completions_.clear();
    next_conn_id_ = 2;
    event_stop_.store(false, std::memory_order_relaxed);
    started_ = true;
    stopping_ = false;
    io_ = std::thread([this] { IoLoop(); });
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { EventWorkerLoop(); });
    }
    RegisterMetrics();
    return util::Status::OK();
  }

  started_ = true;
  stopping_ = false;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  RegisterMetrics();
  return util::Status::OK();
}

void TcpServer::Stop() {
  std::thread io;
  std::thread acceptor;
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    io = std::move(io_);
    acceptor = std::move(acceptor_);
    workers = std::move(workers_);
    // Unblock legacy workers parked in a read: SHUT_RD makes their next
    // (or current) read return EOF, and they observe stopping_ on the way
    // out. The write side stays open so a worker mid-request can still
    // deliver its response — the drain contract: every request the
    // server accepted is answered.
    for (const int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  // The collector reads only atomics (plus work_mutex_ for queue depth),
  // so unregistering before the joins is safe; it must be gone before the
  // members it captures are destroyed.
  if (metrics_collector_id_ != 0) {
    obs::MetricsRegistry::Global().RemoveCollector(metrics_collector_id_);
    metrics_collector_id_ = 0;
  }
  event_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
  }
  work_cv_.notify_all();
  if (wake_fd_ >= 0) WakeIo();
  if (options_.dispatch == ServerOptions::Dispatch::kThreadPerConnection &&
      listen_fd_ >= 0) {
    // Closing the listener unblocks the legacy acceptor's accept(). The
    // event loop's listener is non-blocking and polled — the I/O thread
    // still owns it, so it is closed after the join instead.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  if (io.joinable()) io.join();
  if (acceptor.joinable()) acceptor.join();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    while (!queue_.empty()) {
      ::close(queue_.front());
      queue_.pop_front();
    }
    started_ = false;
  }
  stopped_.store(true, std::memory_order_relaxed);
  NotifyShutdownRequested();
}

bool TcpServer::WaitUntilShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] {
    return shutdown_requested_.load(std::memory_order_relaxed) ||
           stopped_.load(std::memory_order_relaxed);
  });
  return shutdown_requested_.load(std::memory_order_relaxed);
}

void TcpServer::NotifyShutdownRequested() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
  }
  shutdown_cv_.notify_all();
}

std::string TcpServer::EncodeOverloadReject(const std::string& what) {
  wire::Response response;
  response.status = util::ResourceExhaustedError(what + "; retry");
  return wire::EncodeResponse(response);
}

void TcpServer::EmitShedEvent(const char* reason, int cap) {
  if (options_.journal == nullptr) return;
  obs::JournalEvent event;
  event.type = "shed";
  event.text.emplace_back("reason", reason);
  event.num.emplace_back("cap", static_cast<double>(cap));
  (void)options_.journal->Emit(std::move(event));
}

// ---- event loop (kEventLoop) ----

void TcpServer::IoLoop() {
  std::vector<epoll_event> events(512);
  while (!event_stop_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                     /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (event_stop_.load(std::memory_order_relaxed)) break;
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof counter) > 0) {
        }
        HandleCompletions();
        continue;
      }
      const auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn* conn = it->second.get();
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        // The peer is gone in both directions (reset / full close); any
        // in-flight completion for this id is dropped when it arrives.
        CloseConn(*conn);
        continue;
      }
      if (ev & EPOLLIN) {
        HandleReadable(*conn);
        const auto again = conns_.find(tag);
        if (again == conns_.end()) continue;  // HandleReadable closed it
        conn = again->second.get();
      }
      if (ev & EPOLLOUT) FlushConn(*conn);
    }
  }
  for (auto& entry : conns_) ::close(entry.second->fd);
  conns_.clear();
  connections_active_.store(0, std::memory_order_relaxed);
}

void TcpServer::HandleAccept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    wire::SetTcpNoDelay(fd);
    if (options_.max_connections > 0 &&
        conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      shed_connection_cap_.fetch_add(1, std::memory_order_relaxed);
      EmitShedEvent("connection_cap", options_.max_connections);
      // The accepted fd is still blocking (O_NONBLOCK does not inherit
      // through accept), so the refusal frame can be written inline.
      (void)wire::WriteFrame(
          fd, EncodeOverloadReject(
                  "server at connection capacity (" +
                  std::to_string(options_.max_connections) + " connections)"));
      ::close(fd);
      continue;
    }
    if (!wire::SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->epoll_events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::HandleReadable(Conn& conn) {
  if (conn.draining) return;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn.in.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof buf) break;  // socket drained
      continue;
    }
    if (n == 0) {
      conn.draining = true;  // peer EOF; answer what was pipelined, then close
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }
  ParseFrames(conn);
  PumpConn(conn);
  FlushConn(conn);  // may close `conn`; nothing after this line
}

void TcpServer::ParseFrames(Conn& conn) {
  const int pipeline_cap = options_.max_pipelined_requests;
  while (conn.in.size() - conn.in_pos >= 4) {
    const auto* p =
        reinterpret_cast<const unsigned char*>(conn.in.data()) + conn.in_pos;
    const uint32_t length = static_cast<uint32_t>(p[0]) |
                            (static_cast<uint32_t>(p[1]) << 8) |
                            (static_cast<uint32_t>(p[2]) << 16) |
                            (static_cast<uint32_t>(p[3]) << 24);
    if (length > options_.max_frame_bytes) {
      // Same contract as the blocking path's ReadFrame: the stream cannot
      // be resynced, but the client gets the reason as an (in-order)
      // error frame before the connection closes.
      wire::Response response;
      response.status = util::InvalidArgumentError(
          "frame of " + std::to_string(length) + " bytes exceeds the " +
          std::to_string(options_.max_frame_bytes) + "-byte limit");
      conn.pending.push_back({wire::EncodeResponse(response), true});
      conn.draining = true;
      conn.close_after_flush = true;
      conn.in.clear();
      conn.in_pos = 0;
      return;
    }
    if (conn.in.size() - conn.in_pos - 4 < length) break;  // partial frame
    conn.in_pos += 4;
    std::string payload = conn.in.substr(conn.in_pos, length);
    conn.in_pos += length;
    if (pipeline_cap > 0 &&
        conn.pending.size() >= static_cast<size_t>(pipeline_cap)) {
      shed_pipeline_cap_.fetch_add(1, std::memory_order_relaxed);
      EmitShedEvent("pipeline_cap", pipeline_cap);
      conn.pending.push_back(
          {EncodeOverloadReject("connection pipeline full (" +
                                std::to_string(pipeline_cap) +
                                " frames queued)"),
           true});
    } else {
      conn.pending.push_back({std::move(payload), false});
    }
  }
  if (conn.in_pos == conn.in.size()) {
    conn.in.clear();
    conn.in_pos = 0;
  } else if (conn.in_pos > 4096) {
    conn.in.erase(0, conn.in_pos);
    conn.in_pos = 0;
  }
}

void TcpServer::PumpConn(Conn& conn) {
  while (!conn.busy && !conn.pending.empty()) {
    Conn::PendingFrame& front = conn.pending.front();
    if (front.rejected) {
      AppendFrame(conn.out, front.payload);
      conn.pending.pop_front();
      continue;
    }
    WorkItem item;
    item.conn_id = conn.id;
    item.payload = std::move(front.payload);
    item.enqueue_micros = NowMicros();
    conn.pending.pop_front();
    conn.busy = true;
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      work_.push_back(std::move(item));
    }
    work_cv_.notify_one();
  }
}

void TcpServer::HandleWritable(Conn& conn) { FlushConn(conn); }

void TcpServer::FlushConn(Conn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn);
    return;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
    if ((conn.close_after_flush || conn.draining) && !conn.busy &&
        conn.pending.empty()) {
      CloseConn(conn);
      return;
    }
  }
  UpdateInterest(conn);
}

void TcpServer::UpdateInterest(Conn& conn) {
  uint32_t want = 0;
  const size_t backlog = conn.out.size() - conn.out_pos;
  if (!conn.draining && backlog < kOutHighWater) want |= EPOLLIN;
  if (backlog > 0) want |= EPOLLOUT;
  if (want == conn.epoll_events) return;
  if ((conn.epoll_events & EPOLLIN) != 0 && (want & EPOLLIN) == 0 &&
      !conn.draining) {
    // Reads were on and are being turned off by the high-water check
    // alone: the peer is not draining its socket fast enough.
    backpressure_events_.fetch_add(1, std::memory_order_relaxed);
  }
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.epoll_events = want;
}

void TcpServer::CloseConn(Conn& conn) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  conns_.erase(conn.id);  // destroys `conn`
}

void TcpServer::HandleCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  const bool metrics = obs::MetricsEnabled();
  const int64_t now = NowMicros();
  for (Completion& done : batch) {
    const auto it = conns_.find(done.conn_id);
    if (it != conns_.end()) {
      Conn& conn = *it->second;
      conn.busy = false;
      if (metrics && done.handoff_micros > 0) {
        stage_hist_[static_cast<size_t>(obs::Stage::kWrite)].Record(
            static_cast<double>(now - done.handoff_micros));
      }
      conn.out.append(done.frame);
      if (done.shutdown) conn.close_after_flush = true;
      PumpConn(conn);
      FlushConn(conn);  // may close `conn`
    }
    if (done.shutdown) {
      // Signalled after the flush attempt so the draining daemon tears
      // the server down only once the response is (normally) on the wire.
      shutdown_requested_.store(true, std::memory_order_relaxed);
      NotifyShutdownRequested();
    }
  }
}

void TcpServer::EventWorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [&] {
        return event_stop_.load(std::memory_order_relaxed) || !work_.empty();
      });
      if (work_.empty()) return;  // stopping
      item = std::move(work_.front());
      work_.pop_front();
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    // The per-request stage trace: installed thread-locally so the
    // service and admission layers below record into it without plumbing.
    const bool metrics = obs::MetricsEnabled();
    obs::StageTrace trace;
    obs::StageTrace::Scope scope(metrics ? &trace : nullptr);
    const int64_t t_start = NowMicros();
    trace.Add(obs::Stage::kQueueWait,
              static_cast<double>(t_start - item.enqueue_micros));

    wire::Response response;
    bool shutdown = false;
    auto request = wire::DecodeRequest(item.payload);
    trace.Add(obs::Stage::kParse, static_cast<double>(NowMicros() - t_start));
    CountFrame(request);
    if (!request.ok()) {
      response.status = request.status();
    } else {
      trace.request_id = request->request_id;
      response = Dispatch(*request);
      // Only an *accepted* shutdown drains the server (a dataset-
      // qualified one was answered with an error frame and must not).
      shutdown = request->type == wire::MessageType::kShutdown &&
                 response.status.ok();
    }

    Completion done;
    done.conn_id = item.conn_id;
    const int64_t t_encode = NowMicros();
    AppendFrame(done.frame, wire::EncodeResponse(response));
    done.shutdown = shutdown;
    const int64_t t_done = NowMicros();
    trace.Add(obs::Stage::kEncode, static_cast<double>(t_done - t_encode));
    done.handoff_micros = t_done;

    if (metrics) {
      // kWrite is recorded by the I/O thread from handoff_micros; every
      // other stage the worker observed lands here.
      for (size_t i = 0; i < obs::kStageCount; ++i) {
        const double micros = trace.micros(static_cast<obs::Stage>(i));
        if (micros > 0) stage_hist_[i].Record(micros);
      }
    }
    MaybeLogSlowRequest(item, trace, t_done);

    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(done));
    }
    WakeIo();
  }
}

void TcpServer::CountFrame(const util::StatusOr<wire::Request>& request) {
  if (!request.ok()) {
    frames_other_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (request->type) {
    case wire::MessageType::kEstimate:
      frames_estimate_.fetch_add(1, std::memory_order_relaxed);
      break;
    case wire::MessageType::kBatchEstimate:
      frames_batch_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      frames_other_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void TcpServer::MaybeLogSlowRequest(const WorkItem& item,
                                    const obs::StageTrace& trace,
                                    int64_t done_micros) {
  if (options_.slow_request_millis <= 0 || item.enqueue_micros <= 0) return;
  const int64_t total_micros = done_micros - item.enqueue_micros;
  if (total_micros <
      static_cast<int64_t>(options_.slow_request_millis) * 1000) {
    return;
  }
  // Rate-limit to ~slow_log_per_sec lines/second: a saturated server
  // producing only slow requests must not also saturate its own stderr
  // (or journal). <= 0 removes the limiter.
  if (options_.slow_log_per_sec > 0) {
    const int64_t min_gap_micros =
        static_cast<int64_t>(1e6 / options_.slow_log_per_sec);
    int64_t last = last_slow_log_micros_.load(std::memory_order_relaxed);
    if (done_micros - last < min_gap_micros ||
        !last_slow_log_micros_.compare_exchange_strong(
            last, done_micros, std::memory_order_relaxed)) {
      return;
    }
  }
  char rid[32];
  rid[0] = '\0';
  if (trace.request_id != 0) {
    std::snprintf(rid, sizeof rid, " rid=%016llx",
                  static_cast<unsigned long long>(trace.request_id));
  }
  std::fprintf(stderr,
               "[cegraph_serve] slow request: %.1f ms (conn %llu%s): %s\n",
               static_cast<double>(total_micros) / 1000.0,
               static_cast<unsigned long long>(item.conn_id), rid,
               trace.Format().c_str());
  if (options_.journal != nullptr) {
    obs::JournalEvent event;
    event.type = "slow_request";
    event.request_id = trace.request_id;
    event.num.emplace_back("total_millis",
                           static_cast<double>(total_micros) / 1000.0);
    event.num.emplace_back("conn", static_cast<double>(item.conn_id));
    for (size_t i = 0; i < obs::kStageCount; ++i) {
      const obs::Stage stage = static_cast<obs::Stage>(i);
      const double micros = trace.micros(stage);
      if (micros > 0) {
        event.num.emplace_back(std::string(obs::StageName(stage)) + "_micros",
                               micros);
      }
    }
    (void)options_.journal->Emit(std::move(event));
  }
}

void TcpServer::WakeIo() {
  const uint64_t one = 1;
  for (;;) {
    if (::write(wake_fd_, &one, sizeof one) >= 0 || errno != EINTR) return;
  }
}

// ---- thread-per-connection (kThreadPerConnection) ----

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EBADF/EINVAL after Stop closed the listener; EINTR restarts.
      if (errno == EINTR) continue;
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    wire::SetTcpNoDelay(fd);
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      if (options_.max_queued_connections > 0 &&
          queue_.size() >=
              static_cast<size_t>(options_.max_queued_connections)) {
        reject = true;
      } else {
        queue_.push_back(fd);
      }
    }
    if (reject) {
      shed_queue_cap_.fetch_add(1, std::memory_order_relaxed);
      EmitShedEvent("queue_cap", options_.max_queued_connections);
      (void)wire::WriteFrame(
          fd, EncodeOverloadReject(
                  "server accept queue full (" +
                  std::to_string(options_.max_queued_connections) +
                  " connections waiting)"));
      ::close(fd);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void TcpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // queued fds are closed by Stop
      fd = queue_.front();
      queue_.pop_front();
      active_.insert(fd);
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(fd);
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  for (;;) {
    auto payload = wire::ReadFrame(fd, options_.max_frame_bytes);
    if (!payload.ok()) {
      // Clean close, truncation or corruption. An implausible length
      // prefix is the one failure we can still answer — the stream is
      // unrecoverable (we cannot resync on frames), but the client gets
      // the reason as an error frame instead of a bare connection reset.
      if (payload.status().code() == util::StatusCode::kInvalidArgument) {
        wire::Response response;
        response.status = payload.status();
        (void)wire::WriteFrame(fd, wire::EncodeResponse(response));
      }
      return;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(payload->size() + 4, std::memory_order_relaxed);

    wire::Response response;
    auto request = wire::DecodeRequest(*payload);
    CountFrame(request);
    if (!request.ok()) {
      response.status = request.status();
    } else {
      response = Dispatch(*request);
    }
    const std::string encoded = wire::EncodeResponse(response);
    if (!wire::WriteFrame(fd, encoded).ok()) return;
    bytes_out_.fetch_add(encoded.size() + 4, std::memory_order_relaxed);

    // Only an *accepted* shutdown drains the server (a dataset-qualified
    // one was answered with an error frame above and must not).
    if (request.ok() && request->type == wire::MessageType::kShutdown &&
        response.status.ok()) {
      shutdown_requested_.store(true, std::memory_order_relaxed);
      NotifyShutdownRequested();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) return;
    }
  }
}

wire::Response TcpServer::Dispatch(const wire::Request& request) {
  wire::Response response;
  response.type = request.type;
  // v5: a client-stamped request id is echoed verbatim on every
  // response, success or error, so the client can correlate pipelined
  // frames with the server's slow log and journal.
  response.request_id = request.request_id;

  // Routing: kShutdown is server-level by definition — a dataset-
  // qualified shutdown is rejected rather than silently draining every
  // tenant. kPing with a dataset validates the name (a cheap liveness +
  // routing probe) but needs no service; everything else runs against
  // the dataset the request names (empty = the default dataset). The
  // resolved name is echoed only to clients that asked explicitly, so
  // responses to v1 frames stay v1.
  EstimationService* service = nullptr;
  if (request.type == wire::MessageType::kShutdown) {
    if (!request.dataset.empty()) {
      response.status = util::InvalidArgumentError(
          "shutdown is server-wide and drains every dataset; omit the "
          "dataset field");
      response.dataset = request.dataset;
      return response;
    }
  } else if (request.type != wire::MessageType::kPing ||
             !request.dataset.empty()) {
    auto resolved = catalog_.Resolve(request.dataset);
    if (!resolved.ok()) {
      response.status = resolved.status();
      if (!request.dataset.empty()) response.dataset = request.dataset;
      return response;
    }
    service = *resolved;
    if (!request.dataset.empty()) response.dataset = request.dataset;
  }

  switch (request.type) {
    case wire::MessageType::kEstimate: {
      auto estimate = service->EstimateLine(request.text);
      if (!estimate.ok()) {
        response.status = estimate.status();
      } else {
        response.estimate = std::move(*estimate);
      }
      break;
    }
    case wire::MessageType::kBatchEstimate: {
      auto batch = service->EstimateBatch(request.lines);
      if (!batch.ok()) {
        response.status = batch.status();
      } else {
        response.batch = std::move(*batch);
      }
      break;
    }
    case wire::MessageType::kApplyDeltas: {
      // The feed travels inline in the delta text format; applying it is
      // submit + synchronous flush, so the response's epoch is the state
      // actually serving the deltas.
      std::istringstream feed{request.text};
      auto batch = dynamic::ReadDeltaText(feed);
      if (!batch.ok()) {
        response.status = batch.status();
        break;
      }
      if (auto submitted = service->SubmitDeltas(std::move(*batch));
          !submitted.ok()) {
        response.status = submitted;
        break;
      }
      auto swapped = service->FlushDeltas();
      if (!swapped.ok()) {
        response.status = swapped.status();
      } else {
        response.swap = *swapped;
      }
      break;
    }
    case wire::MessageType::kSwapSnapshot: {
      auto swapped = service->HotSwapSnapshot(request.text);
      if (!swapped.ok()) {
        response.status = swapped.status();
      } else {
        response.swap = *swapped;
      }
      break;
    }
    case wire::MessageType::kStats: {
      // "v4" in the request text is the client's opt-in to the trailing
      // observability extension; "v5" additionally gets the per-class
      // accuracy scorecard extension. Older clients leave the text empty
      // and get a byte-identical v3 response.
      const bool v5 = request.text == wire::kStatsV5Token;
      ServiceStats stats = service->Stats(/*with_scorecard=*/v5);
      if (v5 || request.text == wire::kStatsV4Token) stats.v4_wire = true;
      FillServerCounters(stats);
      response.stats = std::move(stats);
      break;
    }
    case wire::MessageType::kPing:
      response.text = request.text.empty() ? "pong" : request.text;
      break;
    case wire::MessageType::kShutdown:
      response.text = "draining";
      break;
  }
  return response;
}

void TcpServer::FillServerCounters(ServiceStats& stats) const {
  auto& s = stats.server;
  s.present = true;
  s.connections_accepted = connections_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.shed_connection_cap = shed_connection_cap();
  s.shed_pipeline_cap = shed_pipeline_cap();
  s.shed_queue_cap = shed_queue_cap();
  s.backpressure_events = backpressure_events();
  s.bytes_in = bytes_in();
  s.bytes_out = bytes_out();
  s.frames_estimate = frames_estimate_.load(std::memory_order_relaxed);
  s.frames_batch = frames_batch_.load(std::memory_order_relaxed);
  s.frames_other = frames_other_.load(std::memory_order_relaxed);
}

void TcpServer::RegisterMetrics() {
  const std::string label =
      "listen=\"" + options_.host + ":" + std::to_string(port_) + "\"";
  metrics_collector_id_ = obs::MetricsRegistry::Global().AddCollector(
      [this, label](obs::PromWriter& w) {
        w.WriteCounter("cegraph_server_connections_accepted_total", label,
                       connections_.load(std::memory_order_relaxed));
        w.WriteGauge(
            "cegraph_server_connections_active", label,
            static_cast<double>(
                connections_active_.load(std::memory_order_relaxed)));
        w.WriteCounter("cegraph_server_requests_total", label,
                       requests_.load(std::memory_order_relaxed));
        w.WriteCounter("cegraph_server_shed_total",
                       label + ",reason=\"connection_cap\"",
                       shed_connection_cap());
        w.WriteCounter("cegraph_server_shed_total",
                       label + ",reason=\"pipeline_cap\"",
                       shed_pipeline_cap());
        w.WriteCounter("cegraph_server_shed_total",
                       label + ",reason=\"queue_cap\"", shed_queue_cap());
        w.WriteCounter("cegraph_server_backpressure_events_total", label,
                       backpressure_events());
        w.WriteCounter("cegraph_server_bytes_in_total", label, bytes_in());
        w.WriteCounter("cegraph_server_bytes_out_total", label, bytes_out());
        w.WriteCounter("cegraph_server_frames_total",
                       label + ",type=\"estimate\"",
                       frames_estimate_.load(std::memory_order_relaxed));
        w.WriteCounter("cegraph_server_frames_total",
                       label + ",type=\"batch\"",
                       frames_batch_.load(std::memory_order_relaxed));
        w.WriteCounter("cegraph_server_frames_total",
                       label + ",type=\"other\"",
                       frames_other_.load(std::memory_order_relaxed));
        size_t depth = 0;
        {
          std::lock_guard<std::mutex> lock(work_mutex_);
          depth = work_.size();
        }
        w.WriteGauge("cegraph_server_worker_queue_depth", label,
                     static_cast<double>(depth));
        for (size_t i = 0; i < obs::kStageCount; ++i) {
          w.WriteHistogram(
              "cegraph_server_stage_micros",
              label + ",stage=\"" +
                  obs::StageName(static_cast<obs::Stage>(i)) + "\"",
              stage_hist_[i].Snapshot());
        }
      });
}

}  // namespace cegraph::service
