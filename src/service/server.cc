#include "service/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <sstream>
#include <utility>

#include "dynamic/delta_io.h"

namespace cegraph::service {

TcpServer::TcpServer(EstimationService& service, ServerOptions options)
    : catalog_(single_), options_(std::move(options)) {
  // A one-entry borrowed catalog cannot fail to assemble.
  (void)single_.AddBorrowed("default", &service);
}

TcpServer::TcpServer(DatasetCatalog& catalog, ServerOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

util::Status TcpServer::Start() {
  if (started_) return util::FailedPreconditionError("server already started");
  auto fd = wire::ListenTcp(options_.host, options_.port, options_.backlog);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  auto port = wire::BoundPort(listen_fd_);
  if (!port.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  started_ = true;
  stopping_ = false;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return util::Status::OK();
}

void TcpServer::Stop() {
  std::thread acceptor;
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    acceptor = std::move(acceptor_);
    workers = std::move(workers_);
    // Unblock workers parked in a read: SHUT_RD makes their next (or
    // current) read return EOF, and they observe stopping_ on the way
    // out. The write side stays open so a worker mid-request can still
    // deliver its response — the drain contract: every request the
    // server accepted is answered.
    for (const int fd : active_) ::shutdown(fd, SHUT_RD);
  }
  // Closing the listener unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  if (acceptor.joinable()) acceptor.join();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    while (!queue_.empty()) {
      ::close(queue_.front());
      queue_.pop_front();
    }
    started_ = false;
  }
  stopped_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
  }
  shutdown_cv_.notify_all();
}

bool TcpServer::WaitUntilShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] {
    return shutdown_requested_.load(std::memory_order_relaxed) ||
           stopped_.load(std::memory_order_relaxed);
  });
  return shutdown_requested_.load(std::memory_order_relaxed);
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EBADF/EINVAL after Stop closed the listener; EINTR restarts.
      if (errno == EINTR) continue;
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void TcpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // queued fds are closed by Stop
      fd = queue_.front();
      queue_.pop_front();
      active_.insert(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  for (;;) {
    auto payload = wire::ReadFrame(fd, options_.max_frame_bytes);
    if (!payload.ok()) {
      // Clean close, truncation or corruption. An implausible length
      // prefix is the one failure we can still answer — the stream is
      // unrecoverable (we cannot resync on frames), but the client gets
      // the reason as an error frame instead of a bare connection reset.
      if (payload.status().code() == util::StatusCode::kInvalidArgument) {
        wire::Response response;
        response.status = payload.status();
        (void)wire::WriteFrame(fd, wire::EncodeResponse(response));
      }
      return;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    wire::Response response;
    auto request = wire::DecodeRequest(*payload);
    if (!request.ok()) {
      response.status = request.status();
    } else {
      response = Dispatch(*request);
    }
    if (!wire::WriteFrame(fd, wire::EncodeResponse(response)).ok()) return;

    // Only an *accepted* shutdown drains the server (a dataset-qualified
    // one was answered with an error frame above and must not).
    if (request.ok() && request->type == wire::MessageType::kShutdown &&
        response.status.ok()) {
      shutdown_requested_.store(true, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
      }
      shutdown_cv_.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stopping_) return;
    }
  }
}

wire::Response TcpServer::Dispatch(const wire::Request& request) {
  wire::Response response;
  response.type = request.type;

  // Routing: kShutdown is server-level by definition — a dataset-
  // qualified shutdown is rejected rather than silently draining every
  // tenant. kPing with a dataset validates the name (a cheap liveness +
  // routing probe) but needs no service; everything else runs against
  // the dataset the request names (empty = the default dataset). The
  // resolved name is echoed only to clients that asked explicitly, so
  // responses to v1 frames stay v1.
  EstimationService* service = nullptr;
  if (request.type == wire::MessageType::kShutdown) {
    if (!request.dataset.empty()) {
      response.status = util::InvalidArgumentError(
          "shutdown is server-wide and drains every dataset; omit the "
          "dataset field");
      response.dataset = request.dataset;
      return response;
    }
  } else if (request.type != wire::MessageType::kPing ||
             !request.dataset.empty()) {
    auto resolved = catalog_.Resolve(request.dataset);
    if (!resolved.ok()) {
      response.status = resolved.status();
      if (!request.dataset.empty()) response.dataset = request.dataset;
      return response;
    }
    service = *resolved;
    if (!request.dataset.empty()) response.dataset = request.dataset;
  }

  switch (request.type) {
    case wire::MessageType::kEstimate: {
      auto estimate = service->EstimateLine(request.text);
      if (!estimate.ok()) {
        response.status = estimate.status();
      } else {
        response.estimate = std::move(*estimate);
      }
      break;
    }
    case wire::MessageType::kApplyDeltas: {
      // The feed travels inline in the delta text format; applying it is
      // submit + synchronous flush, so the response's epoch is the state
      // actually serving the deltas.
      std::istringstream feed{request.text};
      auto batch = dynamic::ReadDeltaText(feed);
      if (!batch.ok()) {
        response.status = batch.status();
        break;
      }
      if (auto submitted = service->SubmitDeltas(std::move(*batch));
          !submitted.ok()) {
        response.status = submitted;
        break;
      }
      auto swapped = service->FlushDeltas();
      if (!swapped.ok()) {
        response.status = swapped.status();
      } else {
        response.swap = *swapped;
      }
      break;
    }
    case wire::MessageType::kSwapSnapshot: {
      auto swapped = service->HotSwapSnapshot(request.text);
      if (!swapped.ok()) {
        response.status = swapped.status();
      } else {
        response.swap = *swapped;
      }
      break;
    }
    case wire::MessageType::kStats:
      response.stats = service->Stats();
      break;
    case wire::MessageType::kPing:
      response.text = request.text.empty() ? "pong" : request.text;
      break;
    case wire::MessageType::kShutdown:
      response.text = "draining";
      break;
  }
  return response;
}

}  // namespace cegraph::service
