#include "service/admission.h"

namespace cegraph::service {

AdmissionController::Ticket AdmissionController::TryAdmit() {
  if (max_in_flight_ <= 0) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Ticket(this);
  }
  int64_t current = in_flight_.load(std::memory_order_relaxed);
  while (current < max_in_flight_) {
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      UpdatePeak(current + 1);
      return Ticket(this);
    }
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return Ticket();
}

void AdmissionController::UpdatePeak(int64_t candidate) {
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (candidate > peak &&
         !peak_.compare_exchange_weak(peak, candidate,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace cegraph::service
