#include "service/admission.h"

namespace cegraph::service {

AdmissionController::Ticket AdmissionController::TryAdmit(int64_t weight) {
  if (weight < 1) weight = 1;
  if (capacity_ <= 0) {
    in_flight_.fetch_add(weight, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    admitted_weight_.fetch_add(static_cast<uint64_t>(weight),
                               std::memory_order_relaxed);
    return Ticket(this, weight);
  }
  int64_t current = in_flight_.load(std::memory_order_relaxed);
  // Admit while *below* capacity, then charge the full weight: an
  // overweight request overshoots the pool by at most itself instead of
  // starving forever on a small capacity.
  while (current < capacity_) {
    if (in_flight_.compare_exchange_weak(current, current + weight,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      admitted_weight_.fetch_add(static_cast<uint64_t>(weight),
                                 std::memory_order_relaxed);
      UpdatePeak(current + weight);
      return Ticket(this, weight);
    }
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  rejected_weight_.fetch_add(static_cast<uint64_t>(weight),
                             std::memory_order_relaxed);
  return Ticket();
}

void AdmissionController::UpdatePeak(int64_t candidate) {
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (candidate > peak &&
         !peak_.compare_exchange_weak(peak, candidate,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace cegraph::service
