#include "service/catalog.h"

#include <utility>

namespace cegraph::service {

namespace {

util::Status ValidateName(const std::string& name) {
  if (name.empty()) {
    return util::InvalidArgumentError("dataset name must be non-empty");
  }
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '=') {
      return util::InvalidArgumentError(
          "dataset name '" + name +
          "' contains whitespace or '=' (reserved by the CLI spec syntax)");
    }
  }
  return util::Status::OK();
}

}  // namespace

util::StatusOr<std::unique_ptr<DatasetCatalog>> DatasetCatalog::Create(
    std::vector<DatasetSpec> specs, std::string default_dataset,
    obs::Journal* journal) {
  if (specs.empty()) {
    return util::InvalidArgumentError("catalog needs at least one dataset");
  }
  auto catalog = std::make_unique<DatasetCatalog>();
  for (DatasetSpec& spec : specs) {
    // Stamp the dataset name onto the service's Prometheus series (and
    // journal events) so a multi-tenant page stays disambiguated, and
    // hand every dataset the shared event journal unless the spec wired
    // its own.
    if (spec.options.metrics_label.empty()) {
      spec.options.metrics_label = spec.name;
    }
    if (spec.options.journal == nullptr) spec.options.journal = journal;
    auto service = EstimationService::Create(std::move(spec.graph),
                                             std::move(spec.options));
    if (!service.ok()) {
      return util::Status(service.status().code(),
                          "dataset " + spec.name + ": " +
                              service.status().message());
    }
    CEGRAPH_RETURN_IF_ERROR(
        catalog->AddOwned(spec.name, std::move(*service)));
  }
  if (!default_dataset.empty()) {
    CEGRAPH_RETURN_IF_ERROR(catalog->SetDefault(default_dataset));
  }
  return catalog;
}

util::Status DatasetCatalog::AddOwned(
    std::string name, std::unique_ptr<EstimationService> service) {
  EstimationService* raw = service.get();
  CEGRAPH_RETURN_IF_ERROR(AddBorrowed(std::move(name), raw));
  owned_.push_back(std::move(service));
  return util::Status::OK();
}

util::Status DatasetCatalog::AddBorrowed(std::string name,
                                         EstimationService* service) {
  CEGRAPH_RETURN_IF_ERROR(ValidateName(name));
  if (service == nullptr) {
    return util::InvalidArgumentError("dataset " + name +
                                      ": null service");
  }
  if (!services_.emplace(name, service).second) {
    return util::InvalidArgumentError("duplicate dataset name '" + name +
                                      "'");
  }
  if (default_.empty()) default_ = std::move(name);
  return util::Status::OK();
}

util::Status DatasetCatalog::SetDefault(const std::string& name) {
  if (services_.find(name) == services_.end()) {
    return util::NotFoundError("default dataset '" + name +
                               "' is not registered");
  }
  default_ = name;
  return util::Status::OK();
}

util::StatusOr<EstimationService*> DatasetCatalog::Resolve(
    std::string_view dataset) const {
  const std::string name(dataset.empty() ? std::string_view(default_)
                                         : dataset);
  auto it = services_.find(name);
  if (it == services_.end()) {
    std::string known;
    for (const auto& [n, unused] : services_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return util::NotFoundError("unknown dataset '" + name +
                               "' (serving: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> DatasetCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, unused] : services_) out.push_back(name);
  return out;
}

}  // namespace cegraph::service
