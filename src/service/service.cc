#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "engine/snapshot.h"
#include "harness/qerror.h"
#include "obs/stage_trace.h"

namespace cegraph::service {

namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SnapshotLoadBreakdown BreakdownOf(
    const engine::EstimationContext::SnapshotLoadReport& report) {
  SnapshotLoadBreakdown out;
  out.loaded = true;
  out.mapped = report.mapped;
  out.mapped_bytes = report.mapped_bytes;
  out.map_millis = report.map_millis;
  out.parse_millis = report.parse_millis;
  out.snapshot_epoch = report.snapshot_epoch;
  return out;
}

/// Prometheus label values must escape backslash, quote and newline.
/// Scorecard class displays are patterns / template names, so this is
/// usually the identity — but a hostile workload line must not be able
/// to break the exposition format.
std::string PromLabelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Query-class identity shared by the scorecard and the feedback store:
/// isomorphism-canonical shape (memoized on the query — the CEG cache
/// already computed it on this path) plus the sorted label multiset the
/// canonical code abstracts away.
std::string QueryClassCode(const query::QueryGraph& query) {
  std::string key = query.CanonicalCode();
  std::vector<uint32_t> labels;
  labels.reserve(query.edges().size());
  for (const query::QueryEdge& e : query.edges()) {
    labels.push_back(e.label);
  }
  std::sort(labels.begin(), labels.end());
  key += '|';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(labels[i]);
  }
  return key;
}

std::string_view DisplayOf(const EstimateRequest& request) {
  return request.template_name.empty()
             ? std::string_view(request.pattern)
             : std::string_view(request.template_name);
}

}  // namespace

util::StatusOr<std::unique_ptr<EstimationService>> EstimationService::Create(
    std::shared_ptr<const graph::Graph> base_graph, ServiceOptions options) {
  if (base_graph == nullptr) {
    return util::InvalidArgumentError("service needs a base graph");
  }
  if (options.estimators.empty()) {
    return util::InvalidArgumentError(
        "service needs at least one estimator name");
  }
  std::unique_ptr<EstimationService> service(
      new EstimationService(std::move(base_graph), std::move(options)));
  service->scorecard_.SetDriftCallback(
      [raw = service.get()](const obs::ScorecardClassReport& report) {
        obs::JournalEvent event;
        event.type = "drift";
        event.text.emplace_back("class", report.display);
        event.num.emplace_back("baseline_median", report.baseline_median);
        event.num.emplace_back("window_p50", report.qerror.p50);
        event.num.emplace_back("hits", static_cast<double>(report.hits));
        raw->EmitJournal(std::move(event));
      });

  auto context = std::make_unique<engine::EstimationContext>(
      service->base_graph_, service->options_.context);
  {
    // Seed the feedback store with the service's learner knobs *before*
    // any snapshot load, so a persisted kFeedback section merges into a
    // store configured the way this service will keep learning.
    auto feedback = std::make_shared<learn::FeedbackStore>(
        service->options_.feedback_options);
    feedback->SetStamp(context->feedback_stamp());
    context->AdoptFeedbackStore(std::move(feedback));
  }
  if (!service->options_.initial_snapshot.empty()) {
    const std::string& path = service->options_.initial_snapshot;
    engine::EstimationContext::SnapshotLoadReport load_report;
    auto loaded = context->LoadSnapshot(path, &load_report);
    if (!loaded.ok() &&
        loaded.code() == util::StatusCode::kFailedPrecondition) {
      // The artifact may describe a later epoch of this base graph:
      // reconstruct by replaying its embedded delta log, then load fresh.
      auto log = engine::ReadSnapshotDeltaLog(path);
      if (log.ok() && !log->empty()) {
        auto applied = context->ApplyDeltas(*log);
        if (applied.ok()) loaded = context->LoadSnapshot(path, &load_report);
      }
    }
    if (!loaded.ok()) return loaded;
    service->last_load_ = BreakdownOf(load_report);  // pre-publication
  }
  if (!service->options_.prewarm_workload.empty()) {
    context->Prewarm(service->options_.prewarm_workload);
  }

  if (service->last_load_.loaded) {
    service->snapshot_loads_.fetch_add(1, std::memory_order_relaxed);
  }
  auto state = service->MakeState(std::move(context), 0);
  if (!state.ok()) return state.status();
  service->state_.store(std::move(*state), std::memory_order_release);
  service->RegisterMetrics();
  if (service->last_load_.loaded) {
    obs::JournalEvent event;
    event.type = "snapshot_load";
    event.num.emplace_back(
        "snapshot_epoch",
        static_cast<double>(service->last_load_.snapshot_epoch));
    event.num.emplace_back("mapped",
                           service->last_load_.mapped ? 1.0 : 0.0);
    event.num.emplace_back("map_millis", service->last_load_.map_millis);
    event.num.emplace_back("parse_millis",
                           service->last_load_.parse_millis);
    service->EmitJournal(std::move(event));
  }

  if (service->options_.compact_trigger_ops > 0) {
    service->maintainer_ = std::thread([raw = service.get()] {
      raw->MaintainerLoop();
    });
  }
  return service;
}

util::StatusOr<std::unique_ptr<EstimationService>> EstimationService::Create(
    graph::Graph&& base_graph, ServiceOptions options) {
  return Create(std::make_shared<const graph::Graph>(std::move(base_graph)),
                std::move(options));
}

EstimationService::EstimationService(
    std::shared_ptr<const graph::Graph> base_graph, ServiceOptions options)
    : base_graph_(std::move(base_graph)),
      options_(std::move(options)),
      admission_(options_.max_in_flight),
      accounting_(options_.estimators.size()),
      scorecard_(options_.scorecard) {}

EstimationService::~EstimationService() {
  if (metrics_collector_id_ != 0) {
    obs::MetricsRegistry::Global().RemoveCollector(metrics_collector_id_);
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    stopping_ = true;
  }
  pending_cv_.notify_all();
  if (maintainer_.joinable()) maintainer_.join();
}

util::StatusOr<std::shared_ptr<ServingState>> EstimationService::MakeState(
    std::unique_ptr<engine::EstimationContext> context, uint64_t version) {
  auto state = std::make_shared<ServingState>();
  state->epoch = context->epoch();
  state->version = version;
  state->names = options_.estimators;
  // Pin the context's feedback store on the state so serve-time lookups
  // and recording never touch the context mutex.
  state->feedback = context->feedback_store_ptr();
  state->engine =
      std::make_unique<engine::EstimationEngine>(std::move(context));
  auto suite = state->engine->Estimators(state->names);
  if (!suite.ok()) return suite.status();
  state->suite = std::move(*suite);
  return state;
}

size_t EstimationService::TrimForRetention(
    engine::EstimationContext& context) const {
  if (options_.replay_keep_epochs < 0) return 0;
  const uint64_t keep = static_cast<uint64_t>(options_.replay_keep_epochs);
  const uint64_t epoch = context.epoch();
  if (epoch <= keep) return 0;
  return context.TrimReplayLog(epoch - keep);
}

void EstimationService::Publish(std::shared_ptr<const ServingState> state) {
  state_.store(std::move(state), std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

util::StatusOr<EstimateResponse> EstimationService::Estimate(
    const EstimateRequest& request) const {
  obs::StageTrace* trace = obs::StageTrace::Current();
  const double a0 = trace != nullptr ? NowMicros() : 0;
  AdmissionController::Ticket ticket =
      admission_.TryAdmit(RequestWeight(request.query));
  if (trace != nullptr) {
    trace->Add(obs::Stage::kAdmission, NowMicros() - a0);
  }
  if (!ticket) {
    return util::ResourceExhaustedError(
        "service saturated (" + std::to_string(admission_.capacity()) +
        " weight units in flight); retry");
  }

  // The whole request runs against this one state: same graph, same
  // statistics, same estimator instances, one epoch. The shared_ptr keeps
  // it alive even if the maintainer publishes successors mid-request.
  const double s0 = trace != nullptr ? NowMicros() : 0;
  const std::shared_ptr<const ServingState> state = AcquireState();
  if (trace != nullptr) {
    trace->Add(obs::Stage::kAcquireState, NowMicros() - s0);
  }
  return EstimateOnState(*state, request);
}

util::StatusOr<EstimateResponse> EstimationService::EstimateOnState(
    const ServingState& state, const EstimateRequest& request) const {
  const double t0 = NowMicros();
  const graph::Graph& g = state.engine->context().graph();
  for (const query::QueryEdge& e : request.query.edges()) {
    if (e.label >= g.num_labels()) {
      request_errors_.fetch_add(1, std::memory_order_relaxed);
      return util::InvalidArgumentError(
          "query label " + std::to_string(e.label) +
          " out of range (graph has " + std::to_string(g.num_labels()) +
          " labels)");
    }
  }

  EstimateResponse response;
  response.epoch = state.epoch;
  response.state_version = state.version;
  if (request.truth.has_value()) {
    response.has_truth = true;
    response.truth = *request.truth;
  }

  // Learned-feedback serve path, resolved once per request: with
  // feedback off the store is never consulted, so serving is
  // bit-identical to a pre-feedback build.
  learn::FeedbackStore* feedback = nullptr;
  std::string class_code;
  if (options_.feedback != FeedbackMode::kOff && state.feedback != nullptr) {
    feedback = state.feedback.get();
    class_code = QueryClassCode(request.query);
  }

  response.results.reserve(state.suite.size());
  for (size_t i = 0; i < state.suite.size(); ++i) {
    EstimatorResult result;
    result.name = state.names[i];
    const double e0 = NowMicros();
    auto estimate = state.suite[i]->Estimate(request.query);
    result.micros = NowMicros() - e0;
    if (estimate.ok()) {
      result.ok = true;
      result.estimate = *estimate;
      result.raw_estimate = *estimate;
      if (feedback != nullptr) {
        // CorrectionFor answers 1.0 below the confidence gate, so a
        // class without support serves raw without a branch here.
        const double correction = feedback->CorrectionFor(
            learn::FeedbackStore::ClassKey(result.name, class_code));
        if (correction != 1.0) {
          if (request.no_correction) {
            corrections_suppressed_.fetch_add(1, std::memory_order_relaxed);
          } else {
            result.estimate = result.raw_estimate * correction;
            result.correction = correction;
            result.corrected = true;
            corrections_applied_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      if (response.has_truth) {
        // Over the *served* estimate — corrected when one applied.
        result.qerror = harness::QError(result.estimate, response.truth);
      }
    } else {
      result.error = estimate.status().ToString();
    }
    response.results.push_back(std::move(result));
  }
  response.total_micros = NowMicros() - t0;
  if (obs::StageTrace* trace = obs::StageTrace::Current()) {
    trace->Add(obs::Stage::kEstimate, response.total_micros);
  }

  const bool metrics = obs::MetricsEnabled();
  served_.fetch_add(1, std::memory_order_relaxed);
  latency_micros_total_.fetch_add(
      static_cast<uint64_t>(response.total_micros),
      std::memory_order_relaxed);
  if (metrics) {
    request_latency_hist_.Record(response.total_micros);
    request_latency_window_.Record(response.total_micros);
  }
  for (size_t i = 0; i < response.results.size(); ++i) {
    EstimatorAccum& accum = accounting_[i];
    const EstimatorResult& result = response.results[i];
    accum.requests.fetch_add(1, std::memory_order_relaxed);
    accum.micros.fetch_add(result.micros, std::memory_order_relaxed);
    if (metrics) accum.latency_hist.Record(result.micros);
    if (!result.ok) {
      accum.failures.fetch_add(1, std::memory_order_relaxed);
    } else if (response.has_truth && harness::UsableQError(result.qerror)) {
      // Only usable samples reach the aggregate: harness::QError returns
      // +inf for a zero estimate against nonzero truth and NaN for
      // nonpositive truth — one such request must not poison the mean
      // (or the histogram) forever.
      accum.truth_requests.fetch_add(1, std::memory_order_relaxed);
      accum.qerror_sum.fetch_add(result.qerror, std::memory_order_relaxed);
      if (metrics) accum.qerror_hist.Record(result.qerror);
    }
  }
  if (metrics && response.has_truth) RecordScorecard(request, response);
  if (feedback != nullptr && response.has_truth) {
    // Pre/post-correction windowed q-error: the live readout of whether
    // the loop helps. Both sides use the same usable samples, so the
    // comparison is apples to apples.
    if (metrics) {
      for (const EstimatorResult& result : response.results) {
        if (!result.ok ||
            !harness::UsableQError(result.raw_estimate, response.truth)) {
          continue;
        }
        qerror_raw_window_.Record(
            harness::QError(result.raw_estimate, response.truth));
        qerror_corrected_window_.Record(
            harness::QError(result.estimate, response.truth));
      }
    }
    // Learning always consumes RAW estimates (kFrozen applies but does
    // not learn). Off the hot path: per-class mutex only.
    if (options_.feedback == FeedbackMode::kOn) {
      RecordFeedback(*feedback, request, response, class_code);
    }
  }
  return response;
}

void EstimationService::RecordFeedback(learn::FeedbackStore& store,
                                       const EstimateRequest& request,
                                       const EstimateResponse& response,
                                       const std::string& class_code) const {
  const std::string_view display = DisplayOf(request);
  for (const EstimatorResult& result : response.results) {
    // Same usability bar as every other truth consumer (satellite
    // contract: one guard, harness::UsableQError, everywhere).
    if (!result.ok ||
        !harness::UsableQError(result.raw_estimate, response.truth)) {
      continue;
    }
    auto update = store.Record(
        learn::FeedbackStore::ClassKey(result.name, class_code), display,
        result.raw_estimate, response.truth);
    if (!update.has_value()) continue;
    obs::JournalEvent event;
    event.type = "correction_update";
    event.text.emplace_back("class", update->display);
    event.text.emplace_back("key", update->key);
    event.num.emplace_back("correction", update->correction);
    event.num.emplace_back("samples",
                           static_cast<double>(update->samples));
    event.num.emplace_back("activated", update->activated ? 1.0 : 0.0);
    EmitJournal(std::move(event));
  }
}

void EstimationService::RecordScorecard(
    const EstimateRequest& request, const EstimateResponse& response) const {
  const std::string key = QueryClassCode(request.query);
  const std::string_view display = DisplayOf(request);
  const int64_t now_sec = obs::WindowedHistogram::NowSec();
  for (const EstimatorResult& result : response.results) {
    // Same usability bar as the mean/histogram aggregates above.
    if (!result.ok || !harness::UsableQError(result.qerror)) {
      continue;
    }
    obs::ScorecardSample sample;
    sample.class_key = key;
    sample.display = display;
    sample.line = request.pattern;
    sample.estimator = result.name;
    sample.qerror = result.qerror;
    sample.estimate = result.estimate;
    sample.truth = response.truth;
    scorecard_.RecordAt(sample, now_sec);
  }
}

void EstimationService::EmitJournal(obs::JournalEvent event) const {
  if (options_.journal == nullptr) return;
  if (event.dataset.empty()) event.dataset = options_.metrics_label;
  options_.journal->Emit(std::move(event));
}

util::StatusOr<EstimateResponse> EstimationService::EstimateLine(
    std::string_view line) const {
  auto request = ParseRequestLine(line);
  if (!request.ok()) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    return request.status();
  }
  return Estimate(*request);
}

std::vector<BatchEstimateItem> EstimationService::RunBatchOnCurrentState(
    const std::vector<const EstimateRequest*>& parsed,
    const std::vector<util::Status>& errors) const {
  // One state for the whole batch: every item shares a single epoch, the
  // per-frame extension of the one-request consistency contract.
  const std::shared_ptr<const ServingState> state = AcquireState();
  std::vector<BatchEstimateItem> items(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (parsed[i] == nullptr) {
      items[i].status = errors[i];
      continue;
    }
    auto response = EstimateOnState(*state, *parsed[i]);
    if (response.ok()) {
      items[i].estimate = std::move(*response);
    } else {
      items[i].status = response.status();
    }
  }
  return items;
}

util::StatusOr<std::vector<BatchEstimateItem>>
EstimationService::EstimateBatch(
    const std::vector<std::string>& lines) const {
  if (lines.empty()) {
    return util::InvalidArgumentError("batch carries no estimate lines");
  }
  std::vector<util::StatusOr<EstimateRequest>> parsed;
  parsed.reserve(lines.size());
  int64_t weight = 0;
  for (const std::string& line : lines) {
    parsed.push_back(ParseRequestLine(line));
    if (parsed.back().ok()) {
      weight += RequestWeight(parsed.back()->query);
    } else {
      request_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // The frame is admitted (or shed) as one unit, priced by everything it
  // carries — a rejected batch costs the service nothing.
  obs::StageTrace* trace = obs::StageTrace::Current();
  const double a0 = trace != nullptr ? NowMicros() : 0;
  AdmissionController::Ticket ticket = admission_.TryAdmit(weight);
  if (trace != nullptr) {
    trace->Add(obs::Stage::kAdmission, NowMicros() - a0);
  }
  if (!ticket) {
    return util::ResourceExhaustedError(
        "service saturated (" + std::to_string(admission_.capacity()) +
        " weight units in flight); retry the batch");
  }
  if (obs::MetricsEnabled()) {
    batch_lines_hist_.Record(static_cast<double>(lines.size()));
  }
  std::vector<const EstimateRequest*> pointers(parsed.size(), nullptr);
  std::vector<util::Status> errors(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    if (parsed[i].ok()) {
      pointers[i] = &*parsed[i];
    } else {
      errors[i] = parsed[i].status();
    }
  }
  return RunBatchOnCurrentState(pointers, errors);
}

util::StatusOr<std::vector<BatchEstimateItem>>
EstimationService::EstimateBatch(
    const std::vector<const EstimateRequest*>& requests) const {
  if (requests.empty()) {
    return util::InvalidArgumentError("batch carries no estimate requests");
  }
  int64_t weight = 0;
  for (const EstimateRequest* request : requests) {
    if (request != nullptr) weight += RequestWeight(request->query);
  }
  AdmissionController::Ticket ticket = admission_.TryAdmit(weight);
  if (!ticket) {
    return util::ResourceExhaustedError(
        "service saturated (" + std::to_string(admission_.capacity()) +
        " weight units in flight); retry the batch");
  }
  if (obs::MetricsEnabled()) {
    batch_lines_hist_.Record(static_cast<double>(requests.size()));
  }
  std::vector<util::Status> errors(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i] == nullptr) {
      errors[i] = util::InvalidArgumentError("null request in batch");
    }
  }
  return RunBatchOnCurrentState(requests, errors);
}

util::Status EstimationService::SubmitDeltas(
    std::vector<dynamic::EdgeDelta> batch) {
  if (batch.empty()) return util::Status::OK();
  // Same range checks DeltaGraph::Apply would make; the vertex and label
  // spaces are fixed at base-graph construction, so validity is
  // epoch-independent and a queued batch can no longer fail the fold.
  for (const dynamic::EdgeDelta& d : batch) {
    if (d.edge.src >= base_graph_->num_vertices() ||
        d.edge.dst >= base_graph_->num_vertices()) {
      return util::InvalidArgumentError("delta edge endpoint out of range");
    }
    if (d.edge.label >= base_graph_->num_labels()) {
      return util::InvalidArgumentError("delta edge label out of range");
    }
  }
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.insert(pending_.end(), batch.begin(), batch.end());
    wake = options_.compact_trigger_ops > 0 &&
           pending_.size() >=
               static_cast<size_t>(options_.compact_trigger_ops);
  }
  if (wake) pending_cv_.notify_one();
  return util::Status::OK();
}

util::StatusOr<SwapReport> EstimationService::FlushDeltas() {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);
  std::vector<dynamic::EdgeDelta> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) {
    const auto state = AcquireState();
    SwapReport report;
    report.epoch = state->epoch;
    report.version = state->version;
    return report;
  }
  return ApplyBatchLocked(std::move(batch));
}

util::StatusOr<SwapReport> EstimationService::ApplyBatchLocked(
    std::vector<dynamic::EdgeDelta> batch) {
  const std::shared_ptr<const ServingState> current = AcquireState();

  SwapReport report;
  report.applied_ops = batch.size();
  const double f0 = NowMicros();
  auto fork = current->engine->context().ForkWithDeltas(
      batch, &report.maintenance);
  const double fold_millis = (NowMicros() - f0) / 1000.0;
  if (obs::MetricsEnabled()) fold_millis_hist_.Record(fold_millis);
  if (!fork.ok()) return fork.status();
  report.trimmed_log_ops = TrimForRetention(**fork);

  auto next = MakeState(std::move(*fork), current->version + 1);
  if (!next.ok()) return next.status();
  report.epoch = (*next)->epoch;
  report.version = (*next)->version;
  Publish(std::move(*next));
  // A fold keeps the estimates' regime: the scorecard baselines stand.
  obs::JournalEvent event;
  event.type = "fold";
  event.num.emplace_back("epoch", static_cast<double>(report.epoch));
  event.num.emplace_back("version", static_cast<double>(report.version));
  event.num.emplace_back("applied_ops",
                         static_cast<double>(report.applied_ops));
  event.num.emplace_back("fold_millis", fold_millis);
  EmitJournal(std::move(event));
  return report;
}

util::StatusOr<SwapReport> EstimationService::HotSwapSnapshot(
    const std::string& path) {
  std::lock_guard<std::mutex> maintenance(maintenance_mutex_);

  // Built entirely off to the side: a fresh context over the shared base
  // graph, rebased onto the artifact. The current state keeps serving
  // until the single publish below.
  auto context = std::make_unique<engine::EstimationContext>(
      base_graph_, options_.context);
  {
    // A snapshot swap rebases statistics, not learned truth: the live
    // feedback store carries over (same base graph, same stamp), and any
    // kFeedback section in the artifact merges in underneath it —
    // existing classes win, so live learning is never rolled back.
    const std::shared_ptr<const ServingState> serving = AcquireState();
    if (serving->feedback != nullptr &&
        serving->feedback->stamp() == context->feedback_stamp()) {
      context->AdoptFeedbackStore(serving->feedback);
    } else {
      auto feedback = std::make_shared<learn::FeedbackStore>(
          options_.feedback_options);
      feedback->SetStamp(context->feedback_stamp());
      context->AdoptFeedbackStore(std::move(feedback));
    }
  }
  SwapReport report;
  engine::EstimationContext::SnapshotLoadReport load_report;
  auto loaded = context->LoadSnapshot(path, &load_report);
  if (!loaded.ok() &&
      loaded.code() == util::StatusCode::kFailedPrecondition) {
    auto log = engine::ReadSnapshotDeltaLog(path);
    if (log.ok() && !log->empty()) {
      auto applied = context->ApplyDeltas(*log);
      if (applied.ok()) {
        loaded = context->LoadSnapshot(path, &load_report);
        if (loaded.ok()) report.snapshot_replayed_deltas = log->size();
      }
    }
  }
  if (!loaded.ok()) return loaded;
  report.snapshot_stale = load_report.stale;
  report.snapshot_replayed_deltas += load_report.replayed_deltas;
  report.snapshot_load = BreakdownOf(load_report);
  snapshot_loads_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(load_mutex_);
    last_load_ = report.snapshot_load;
  }

  // Satellite contract: every successful hot-swap trims the new state's
  // replay log so a churning service's log and epoch history stay bounded.
  report.trimmed_log_ops = TrimForRetention(*context);

  const std::shared_ptr<const ServingState> current = AcquireState();
  auto next = MakeState(std::move(context), current->version + 1);
  if (!next.ok()) return next.status();
  report.epoch = (*next)->epoch;
  report.version = (*next)->version;
  Publish(std::move(*next));
  // The swap rebased the service onto a new artifact: whatever the
  // estimates do now is the new normal, so drift is measured against a
  // baseline stamped from here on.
  scorecard_.StampBaseline();
  obs::JournalEvent event;
  event.type = "swap";
  event.num.emplace_back("epoch", static_cast<double>(report.epoch));
  event.num.emplace_back("version", static_cast<double>(report.version));
  event.num.emplace_back(
      "replayed_deltas",
      static_cast<double>(report.snapshot_replayed_deltas));
  event.num.emplace_back("stale", report.snapshot_stale ? 1.0 : 0.0);
  event.num.emplace_back("map_millis", report.snapshot_load.map_millis);
  event.num.emplace_back("parse_millis",
                         report.snapshot_load.parse_millis);
  EmitJournal(std::move(event));
  return report;
}

void EstimationService::MaintainerLoop() {
  const size_t trigger =
      static_cast<size_t>(options_.compact_trigger_ops);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pending_mutex_);
      pending_cv_.wait(lock, [&] {
        return stopping_ || pending_.size() >= trigger;
      });
      if (stopping_) return;
    }
    // Volume threshold reached: fold everything pending into a new state.
    // Batches were validated at SubmitDeltas, so the fold only fails on
    // resource exhaustion — in which case the batch is dropped and the
    // service keeps serving the last good state.
    (void)FlushDeltas();
  }
}

ServiceStats EstimationService::Stats(bool with_scorecard) const {
  ServiceStats stats;
  stats.served = served_.load(std::memory_order_relaxed);
  stats.rejected = admission_.rejected();
  stats.request_errors = request_errors_.load(std::memory_order_relaxed);
  stats.swaps = swaps_.load(std::memory_order_relaxed);
  const auto state = AcquireState();
  stats.epoch = state->epoch;
  stats.version = state->version;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    stats.pending_delta_ops = pending_.size();
  }
  stats.replay_log_ops = state->engine->context().delta_log().size();
  stats.min_replayable_epoch =
      state->engine->context().min_replayable_epoch();
  stats.in_flight = admission_.in_flight();
  stats.peak_in_flight = admission_.peak_in_flight();
  if (stats.served > 0) {
    stats.mean_latency_micros =
        static_cast<double>(
            latency_micros_total_.load(std::memory_order_relaxed)) /
        static_cast<double>(stats.served);
  }
  stats.estimators.reserve(accounting_.size());
  for (size_t i = 0; i < accounting_.size(); ++i) {
    ServiceStats::EstimatorAccounting out;
    out.name = options_.estimators[i];
    out.requests = accounting_[i].requests.load(std::memory_order_relaxed);
    out.failures = accounting_[i].failures.load(std::memory_order_relaxed);
    if (out.requests > 0) {
      out.mean_micros =
          accounting_[i].micros.load(std::memory_order_relaxed) /
          static_cast<double>(out.requests);
    }
    const uint64_t truth_requests =
        accounting_[i].truth_requests.load(std::memory_order_relaxed);
    if (truth_requests > 0) {
      out.mean_qerror =
          accounting_[i].qerror_sum.load(std::memory_order_relaxed) /
          static_cast<double>(truth_requests);
    }
    out.latency = accounting_[i].latency_hist.Snapshot().Summary();
    out.qerror = accounting_[i].qerror_hist.Snapshot().Summary();
    stats.estimators.push_back(std::move(out));
  }
  stats.latency = request_latency_hist_.Snapshot().Summary();
  stats.batch_lines = batch_lines_hist_.Snapshot().Summary();
  stats.fold_millis = fold_millis_hist_.Snapshot().Summary();
  stats.admitted_weight = admission_.admitted_weight();
  stats.rejected_weight = admission_.rejected_weight();
  stats.snapshot_loads = snapshot_loads_.load(std::memory_order_relaxed);
  for (const auto& cache : state->engine->context().CollectCacheStats()) {
    ServiceStats::CacheRow row;
    row.name = cache.name;
    row.entries = cache.entries;
    row.hits = cache.counters.hits;
    row.misses = cache.counters.misses;
    row.evictions = cache.counters.evictions;
    stats.caches.push_back(std::move(row));
  }
  {
    std::lock_guard<std::mutex> lock(load_mutex_);
    stats.snapshot_load = last_load_;
  }
  stats.any_drift = scorecard_.AnyDrift();
  stats.scorecard_window_seconds =
      options_.scorecard.window.span_seconds();
  stats.latency_1m = request_latency_window_.SnapshotWindow(60).Summary();
  stats.rate_1m = request_latency_window_.RatePerSec(60);
  if (with_scorecard) {
    stats.scorecard = scorecard_.Report(stats.scorecard_window_seconds);
    stats.scorecard_wire = true;
  }
  stats.feedback_mode = options_.feedback;
  stats.corrections_applied =
      corrections_applied_.load(std::memory_order_relaxed);
  stats.corrections_suppressed =
      corrections_suppressed_.load(std::memory_order_relaxed);
  if (state->feedback != nullptr) {
    stats.feedback_classes = state->feedback->class_count();
    stats.feedback_active = state->feedback->active_count();
    stats.feedback_evictions = state->feedback->evictions();
  }
  stats.qerror_raw_1m = qerror_raw_window_.SnapshotWindow(60).Summary();
  stats.qerror_corrected_1m =
      qerror_corrected_window_.SnapshotWindow(60).Summary();
  if (with_scorecard && state->feedback != nullptr) {
    stats.corrections = state->feedback->Report();
    stats.corrections_wire = true;
  }
  return stats;
}

void EstimationService::RegisterMetrics() {
  const std::string dataset_label =
      options_.metrics_label.empty()
          ? std::string()
          : "dataset=\"" + options_.metrics_label + "\"";
  metrics_collector_id_ = obs::MetricsRegistry::Global().AddCollector(
      [this, dataset_label](obs::PromWriter& w) {
        const std::string& l = dataset_label;
        const std::string sep = l.empty() ? "" : ",";
        w.WriteCounter("cegraph_requests_served_total", l, served_.load());
        w.WriteCounter("cegraph_request_errors_total", l,
                       request_errors_.load());
        w.WriteCounter("cegraph_admission_rejected_total", l,
                       admission_.rejected());
        w.WriteCounter("cegraph_admitted_weight_units_total", l,
                       admission_.admitted_weight());
        w.WriteCounter("cegraph_rejected_weight_units_total", l,
                       admission_.rejected_weight());
        w.WriteGauge("cegraph_in_flight_weight", l,
                     static_cast<double>(admission_.in_flight()));
        w.WriteCounter("cegraph_swaps_total", l, swaps_.load());
        w.WriteHistogram("cegraph_request_latency_micros", l,
                         request_latency_hist_.Snapshot());
        w.WriteHistogram("cegraph_batch_lines", l,
                         batch_lines_hist_.Snapshot());
        w.WriteHistogram("cegraph_fold_millis", l,
                         fold_millis_hist_.Snapshot());
        const auto state = AcquireState();
        w.WriteGauge("cegraph_serving_epoch", l,
                     static_cast<double>(state->epoch));
        w.WriteGauge("cegraph_serving_version", l,
                     static_cast<double>(state->version));
        {
          std::lock_guard<std::mutex> lock(pending_mutex_);
          w.WriteGauge("cegraph_pending_delta_ops", l,
                       static_cast<double>(pending_.size()));
        }
        w.WriteCounter("cegraph_snapshot_loads_total", l,
                       snapshot_loads_.load());
        {
          std::lock_guard<std::mutex> lock(load_mutex_);
          w.WriteGauge("cegraph_snapshot_load_map_millis", l,
                       last_load_.map_millis);
          w.WriteGauge("cegraph_snapshot_load_parse_millis", l,
                       last_load_.parse_millis);
          w.WriteGauge("cegraph_snapshot_load_mapped_bytes", l,
                       static_cast<double>(last_load_.mapped_bytes));
        }
        for (size_t i = 0; i < accounting_.size(); ++i) {
          const std::string el =
              l + sep + "estimator=\"" + options_.estimators[i] + "\"";
          w.WriteHistogram("cegraph_estimator_latency_micros", el,
                           accounting_[i].latency_hist.Snapshot());
          w.WriteHistogram("cegraph_estimator_qerror", el,
                           accounting_[i].qerror_hist.Snapshot());
          w.WriteCounter("cegraph_estimator_failures_total", el,
                         accounting_[i].failures.load());
        }
        for (const auto& cache : state->engine->context().CollectCacheStats()) {
          const std::string cl = l + sep + "cache=\"" + cache.name + "\"";
          w.WriteGauge("cegraph_cache_entries", cl,
                       static_cast<double>(cache.entries));
          w.WriteCounter("cegraph_cache_hits_total", cl, cache.counters.hits);
          w.WriteCounter("cegraph_cache_misses_total", cl,
                         cache.counters.misses);
          w.WriteCounter("cegraph_cache_evictions_total", cl,
                         cache.counters.evictions);
        }
        // Windowed views: what the service did *lately*, next to the
        // lifetime histograms above.
        struct WindowView {
          int64_t seconds;
          const char* name;
        };
        static constexpr WindowView kWindows[] = {
            {60, "1m"}, {300, "5m"}, {900, "15m"}};
        for (const WindowView& view : kWindows) {
          const std::string wl =
              l + sep + "window=\"" + view.name + "\"";
          const obs::QuantileSummary s =
              request_latency_window_.SnapshotWindow(view.seconds)
                  .Summary();
          w.WriteGauge("cegraph_request_rate_per_sec", wl,
                       request_latency_window_.RatePerSec(view.seconds));
          w.WriteGauge("cegraph_request_latency_recent_p50_micros", wl,
                       s.p50);
          w.WriteGauge("cegraph_request_latency_recent_p99_micros", wl,
                       s.p99);
        }
        // Per-query-class scorecards. The drifted-classes gauge is the
        // CI tripwire: nonzero means some class's windowed median left
        // its baseline regime.
        w.WriteGauge("cegraph_scorecard_classes", l,
                     static_cast<double>(scorecard_.class_count()));
        w.WriteGauge("cegraph_scorecard_drifted_classes", l,
                     static_cast<double>(scorecard_.drifted_classes()));
        w.WriteCounter("cegraph_scorecard_evictions_total", l,
                       scorecard_.evictions());
        for (const obs::ScorecardClassReport& row : scorecard_.Report(
                 options_.scorecard.window.span_seconds())) {
          const std::string rl = l + sep + "class=\"" +
                                 PromLabelEscape(row.display) + "\"";
          w.WriteCounter("cegraph_scorecard_hits_total", rl, row.hits);
          w.WriteCounter("cegraph_scorecard_under_total", rl, row.under);
          w.WriteCounter("cegraph_scorecard_over_total", rl, row.over);
          w.WriteGauge("cegraph_scorecard_qerror_p50", rl,
                       row.qerror.p50);
          w.WriteGauge("cegraph_scorecard_qerror_p99", rl,
                       row.qerror.p99);
          w.WriteGauge("cegraph_scorecard_drifted", rl,
                       row.drifted ? 1.0 : 0.0);
        }
        // Learned-feedback loop: class census, apply/suppress counters
        // and the trailing-minute pre/post-correction q-error medians
        // (the one-glance "is the loop helping" pair).
        const auto feedback = state->feedback;
        if (feedback != nullptr) {
          w.WriteGauge("cegraph_feedback_classes", l,
                       static_cast<double>(feedback->class_count()));
          w.WriteGauge("cegraph_feedback_active_classes", l,
                       static_cast<double>(feedback->active_count()));
          w.WriteCounter("cegraph_feedback_evictions_total", l,
                         feedback->evictions());
        }
        w.WriteCounter("cegraph_corrections_applied_total", l,
                       corrections_applied_.load());
        w.WriteCounter("cegraph_corrections_suppressed_total", l,
                       corrections_suppressed_.load());
        const obs::QuantileSummary raw_1m =
            qerror_raw_window_.SnapshotWindow(60).Summary();
        const obs::QuantileSummary corrected_1m =
            qerror_corrected_window_.SnapshotWindow(60).Summary();
        w.WriteGauge("cegraph_qerror_precorrection_p50", l, raw_1m.p50);
        w.WriteGauge("cegraph_qerror_precorrection_p99", l, raw_1m.p99);
        w.WriteGauge("cegraph_qerror_postcorrection_p50", l,
                     corrected_1m.p50);
        w.WriteGauge("cegraph_qerror_postcorrection_p99", l,
                     corrected_1m.p99);
      });
}

}  // namespace cegraph::service
