#ifndef CEGRAPH_SERVICE_CATALOG_H_
#define CEGRAPH_SERVICE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "obs/journal.h"
#include "service/service.h"
#include "util/status.h"

namespace cegraph::service {

/// Spec for one dataset a multi-dataset daemon serves.
struct DatasetSpec {
  std::string name;  ///< routing key (the wire protocol's `dataset` field)
  std::shared_ptr<const graph::Graph> graph;
  ServiceOptions options;
};

/// Maps dataset names to EstimationServices — the routing layer of a
/// multi-dataset daemon. Each entry is a full EstimationService, so every
/// dataset has its own independently hot-swappable serving state, its own
/// delta queue + background maintainer, and its own epoch/version line;
/// nothing is shared between datasets except the process.
///
/// Thread-model: the catalog is assembled single-threaded (Create, or
/// AddOwned/AddBorrowed + SetDefault) and is immutable afterwards, so
/// Resolve needs no lock and the serving hot path stays wait-free. The
/// services themselves are fully concurrent as before.
class DatasetCatalog {
 public:
  /// Builds one service per spec (names must be unique and non-empty) and
  /// routes requests without a dataset to `default_dataset` (empty = the
  /// first spec's name). A non-null `journal` (borrowed; must outlive the
  /// catalog) becomes the default event journal of every spec that did
  /// not set its own — each dataset's events carry its name in the
  /// `dataset` field, so one shared JSONL file stays disambiguated, the
  /// same way metrics_label keeps the Prometheus page disambiguated.
  static util::StatusOr<std::unique_ptr<DatasetCatalog>> Create(
      std::vector<DatasetSpec> specs, std::string default_dataset = "",
      obs::Journal* journal = nullptr);

  /// An empty catalog, to be filled with AddOwned/AddBorrowed before any
  /// serving thread touches it.
  DatasetCatalog() = default;

  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Registers `service` under `name`, taking ownership. The first
  /// registered dataset becomes the default until SetDefault overrides it.
  util::Status AddOwned(std::string name,
                        std::unique_ptr<EstimationService> service);

  /// Registers a service owned elsewhere (it must outlive the catalog) —
  /// how a single-service TcpServer wraps itself into catalog shape.
  util::Status AddBorrowed(std::string name, EstimationService* service);

  /// Routes empty-dataset (v1) requests to `name`; NotFound if unknown.
  util::Status SetDefault(const std::string& name);

  /// The service for `dataset` ("" = the default dataset). NotFound for
  /// unknown names, with the known names in the message — this is the
  /// error frame an old or misconfigured client sees.
  util::StatusOr<EstimationService*> Resolve(std::string_view dataset) const;

  const std::string& default_dataset() const { return default_; }
  /// Registered dataset names, sorted.
  std::vector<std::string> names() const;
  size_t size() const { return services_.size(); }

 private:
  std::map<std::string, EstimationService*> services_;  ///< sorted names
  std::vector<std::unique_ptr<EstimationService>> owned_;
  std::string default_;
};

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_CATALOG_H_
