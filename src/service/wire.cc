#include "service/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/serde.h"

namespace cegraph::service::wire {

namespace {

using util::serde::Reader;
using util::serde::Writer;

constexpr char kConnectionClosed[] = "connection closed";

bool ValidType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kEstimate) &&
         type <= static_cast<uint8_t>(MessageType::kBatchEstimate);
}

void EncodeEstimate(Writer& w, const EstimateResponse& estimate) {
  w.WriteU64(estimate.epoch);
  w.WriteU64(estimate.state_version);
  w.WriteDouble(estimate.total_micros);
  w.WriteU8(estimate.has_truth ? 1 : 0);
  w.WriteDouble(estimate.truth);
  w.WriteU32(static_cast<uint32_t>(estimate.results.size()));
  for (const EstimatorResult& result : estimate.results) {
    w.WriteString(result.name);
    w.WriteU8(result.ok ? 1 : 0);
    w.WriteDouble(result.estimate);
    w.WriteString(result.error);
    w.WriteDouble(result.micros);
    w.WriteDouble(result.qerror);
  }
}

util::StatusOr<EstimateResponse> DecodeEstimate(Reader& r) {
  EstimateResponse estimate;
  auto epoch = r.ReadU64();
  if (!epoch.ok()) return epoch.status();
  estimate.epoch = *epoch;
  auto version = r.ReadU64();
  if (!version.ok()) return version.status();
  estimate.state_version = *version;
  auto micros = r.ReadDouble();
  if (!micros.ok()) return micros.status();
  estimate.total_micros = *micros;
  auto has_truth = r.ReadU8();
  if (!has_truth.ok()) return has_truth.status();
  estimate.has_truth = *has_truth != 0;
  auto truth = r.ReadDouble();
  if (!truth.ok()) return truth.status();
  estimate.truth = *truth;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  // Every result occupies well over one byte, so a count beyond the
  // remaining payload is corruption — reject it before reserve() turns
  // it into a multi-gigabyte allocation.
  if (*count > r.remaining()) {
    return util::InvalidArgumentError(
        "estimate result count exceeds frame payload");
  }
  estimate.results.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    EstimatorResult result;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    result.name = std::move(*name);
    auto ok = r.ReadU8();
    if (!ok.ok()) return ok.status();
    result.ok = *ok != 0;
    auto estimate_value = r.ReadDouble();
    if (!estimate_value.ok()) return estimate_value.status();
    result.estimate = *estimate_value;
    auto error = r.ReadString();
    if (!error.ok()) return error.status();
    result.error = std::move(*error);
    auto result_micros = r.ReadDouble();
    if (!result_micros.ok()) return result_micros.status();
    result.micros = *result_micros;
    auto qerror = r.ReadDouble();
    if (!qerror.ok()) return qerror.status();
    result.qerror = *qerror;
    estimate.results.push_back(std::move(result));
  }
  return estimate;
}

void EncodeLoadBreakdown(Writer& w, const SnapshotLoadBreakdown& load) {
  w.WriteU8(load.loaded ? 1 : 0);
  w.WriteU8(load.mapped ? 1 : 0);
  w.WriteU64(load.mapped_bytes);
  w.WriteDouble(load.map_millis);
  w.WriteDouble(load.parse_millis);
  w.WriteU64(load.snapshot_epoch);
}

util::StatusOr<SnapshotLoadBreakdown> DecodeLoadBreakdown(Reader& r) {
  SnapshotLoadBreakdown load;
  auto loaded = r.ReadU8();
  if (!loaded.ok()) return loaded.status();
  load.loaded = *loaded != 0;
  auto mapped = r.ReadU8();
  if (!mapped.ok()) return mapped.status();
  load.mapped = *mapped != 0;
  auto bytes = r.ReadU64();
  if (!bytes.ok()) return bytes.status();
  load.mapped_bytes = *bytes;
  auto map_millis = r.ReadDouble();
  if (!map_millis.ok()) return map_millis.status();
  load.map_millis = *map_millis;
  auto parse_millis = r.ReadDouble();
  if (!parse_millis.ok()) return parse_millis.status();
  load.parse_millis = *parse_millis;
  auto epoch = r.ReadU64();
  if (!epoch.ok()) return epoch.status();
  load.snapshot_epoch = *epoch;
  return load;
}

void EncodeSwap(Writer& w, const SwapReport& swap) {
  w.WriteU64(swap.epoch);
  w.WriteU64(swap.version);
  w.WriteU64(swap.applied_ops);
  w.WriteU64(swap.trimmed_log_ops);
  w.WriteU64(swap.maintenance.inserted_edges);
  w.WriteU64(swap.maintenance.deleted_edges);
  w.WriteU64(swap.maintenance.changed_labels);
  w.WriteU64(swap.maintenance.total_evicted());
  w.WriteU8(swap.snapshot_stale ? 1 : 0);
  w.WriteU64(swap.snapshot_replayed_deltas);
  EncodeLoadBreakdown(w, swap.snapshot_load);
}

util::StatusOr<SwapReport> DecodeSwap(Reader& r) {
  SwapReport swap;
  auto epoch = r.ReadU64();
  if (!epoch.ok()) return epoch.status();
  swap.epoch = *epoch;
  auto version = r.ReadU64();
  if (!version.ok()) return version.status();
  swap.version = *version;
  auto applied = r.ReadU64();
  if (!applied.ok()) return applied.status();
  swap.applied_ops = *applied;
  auto trimmed = r.ReadU64();
  if (!trimmed.ok()) return trimmed.status();
  swap.trimmed_log_ops = *trimmed;
  auto inserted = r.ReadU64();
  if (!inserted.ok()) return inserted.status();
  swap.maintenance.inserted_edges = *inserted;
  auto deleted = r.ReadU64();
  if (!deleted.ok()) return deleted.status();
  swap.maintenance.deleted_edges = *deleted;
  auto labels = r.ReadU64();
  if (!labels.ok()) return labels.status();
  swap.maintenance.changed_labels = *labels;
  // Total evictions travel in one summary slot: the CEG bucket of the
  // report (the per-structure split stays server-side).
  auto evicted = r.ReadU64();
  if (!evicted.ok()) return evicted.status();
  swap.maintenance.ceg_evicted = *evicted;
  auto stale = r.ReadU8();
  if (!stale.ok()) return stale.status();
  swap.snapshot_stale = *stale != 0;
  auto replayed = r.ReadU64();
  if (!replayed.ok()) return replayed.status();
  swap.snapshot_replayed_deltas = *replayed;
  auto load = DecodeLoadBreakdown(r);
  if (!load.ok()) return load.status();
  swap.snapshot_load = *load;
  return swap;
}

void EncodeStats(Writer& w, const ServiceStats& stats) {
  w.WriteU64(stats.served);
  w.WriteU64(stats.rejected);
  w.WriteU64(stats.request_errors);
  w.WriteU64(stats.swaps);
  w.WriteU64(stats.epoch);
  w.WriteU64(stats.version);
  w.WriteU64(stats.pending_delta_ops);
  w.WriteU64(stats.replay_log_ops);
  w.WriteU64(stats.min_replayable_epoch);
  w.WriteU64(static_cast<uint64_t>(stats.in_flight));
  w.WriteU64(static_cast<uint64_t>(stats.peak_in_flight));
  w.WriteDouble(stats.mean_latency_micros);
  w.WriteU32(static_cast<uint32_t>(stats.estimators.size()));
  for (const ServiceStats::EstimatorAccounting& e : stats.estimators) {
    w.WriteString(e.name);
    w.WriteU64(e.requests);
    w.WriteU64(e.failures);
    w.WriteDouble(e.mean_micros);
    w.WriteDouble(e.mean_qerror);
  }
  // Snapshot-load observability (arena snapshots): how the state behind
  // this scrape was loaded and what each phase cost.
  EncodeLoadBreakdown(w, stats.snapshot_load);
}

util::StatusOr<ServiceStats> DecodeStats(Reader& r) {
  ServiceStats stats;
  auto served = r.ReadU64();
  if (!served.ok()) return served.status();
  stats.served = *served;
  auto rejected = r.ReadU64();
  if (!rejected.ok()) return rejected.status();
  stats.rejected = *rejected;
  auto errors = r.ReadU64();
  if (!errors.ok()) return errors.status();
  stats.request_errors = *errors;
  auto swaps = r.ReadU64();
  if (!swaps.ok()) return swaps.status();
  stats.swaps = *swaps;
  auto epoch = r.ReadU64();
  if (!epoch.ok()) return epoch.status();
  stats.epoch = *epoch;
  auto version = r.ReadU64();
  if (!version.ok()) return version.status();
  stats.version = *version;
  auto pending = r.ReadU64();
  if (!pending.ok()) return pending.status();
  stats.pending_delta_ops = *pending;
  auto log_ops = r.ReadU64();
  if (!log_ops.ok()) return log_ops.status();
  stats.replay_log_ops = *log_ops;
  auto min_epoch = r.ReadU64();
  if (!min_epoch.ok()) return min_epoch.status();
  stats.min_replayable_epoch = *min_epoch;
  auto in_flight = r.ReadU64();
  if (!in_flight.ok()) return in_flight.status();
  stats.in_flight = static_cast<int64_t>(*in_flight);
  auto peak = r.ReadU64();
  if (!peak.ok()) return peak.status();
  stats.peak_in_flight = static_cast<int64_t>(*peak);
  auto latency = r.ReadDouble();
  if (!latency.ok()) return latency.status();
  stats.mean_latency_micros = *latency;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > r.remaining()) {
    return util::InvalidArgumentError(
        "estimator accounting count exceeds frame payload");
  }
  stats.estimators.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    ServiceStats::EstimatorAccounting e;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    e.name = std::move(*name);
    auto requests = r.ReadU64();
    if (!requests.ok()) return requests.status();
    e.requests = *requests;
    auto failures = r.ReadU64();
    if (!failures.ok()) return failures.status();
    e.failures = *failures;
    auto micros = r.ReadDouble();
    if (!micros.ok()) return micros.status();
    e.mean_micros = *micros;
    auto qerror = r.ReadDouble();
    if (!qerror.ok()) return qerror.status();
    e.mean_qerror = *qerror;
    stats.estimators.push_back(std::move(e));
  }
  auto load = DecodeLoadBreakdown(r);
  if (!load.ok()) return load.status();
  stats.snapshot_load = *load;
  return stats;
}

// ---- v4 stats extension ----------------------------------------------------
//
// The extension travels as one trailing *string* after the optional v2
// dataset echo, so every pre-v4 field keeps its byte layout. Its content
// is the magic FF 43 47 34, u8 ext version, then the observability block
// (quantile summaries are u64 count + five f64s). Bytes beyond the v1
// block inside the string are ignored — a future ext version can append
// without breaking this decoder.

constexpr char kStatsExtMagic[4] = {'\xff', 'C', 'G', '4'};
/// v5 per-query-class scorecard extension (kStats responses, opt-in).
constexpr char kScorecardExtMagic[4] = {'\xff', 'C', 'G', '5'};
/// Learned-feedback corrections extension (kStats responses, rides the
/// same v5 opt-in as the scorecard).
constexpr char kCorrectionsExtMagic[4] = {'\xff', 'C', 'G', '6'};
/// v5 end-to-end request id (any request; echoed on the response).
constexpr char kRequestIdExtMagic[4] = {'\xff', 'C', 'G', 'R'};

bool HasMagic(std::string_view s, const char (&magic)[4]) {
  return s.size() >= sizeof(magic) &&
         std::memcmp(s.data(), magic, sizeof(magic)) == 0;
}

/// True for any 0xFF-led trailing string: an extension field, never a
/// dataset name.
bool IsExtensionField(std::string_view s) {
  return !s.empty() && s[0] == '\xff';
}

void EncodeSummary(Writer& w, const obs::QuantileSummary& s) {
  w.WriteU64(s.count);
  w.WriteDouble(s.mean);
  w.WriteDouble(s.p50);
  w.WriteDouble(s.p90);
  w.WriteDouble(s.p99);
  w.WriteDouble(s.max);
}

util::StatusOr<obs::QuantileSummary> DecodeSummary(Reader& r) {
  obs::QuantileSummary s;
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  s.count = *count;
  for (double* field : {&s.mean, &s.p50, &s.p90, &s.p99, &s.max}) {
    auto value = r.ReadDouble();
    if (!value.ok()) return value.status();
    *field = *value;
  }
  return s;
}

std::string EncodeStatsExt(const ServiceStats& stats) {
  Writer w;
  w.WriteRaw(std::string_view(kStatsExtMagic, sizeof(kStatsExtMagic)));
  w.WriteU8(1);  // ext version
  EncodeSummary(w, stats.latency);
  EncodeSummary(w, stats.batch_lines);
  EncodeSummary(w, stats.fold_millis);
  w.WriteU64(stats.admitted_weight);
  w.WriteU64(stats.rejected_weight);
  w.WriteU64(stats.snapshot_loads);
  w.WriteU8(stats.server.present ? 1 : 0);
  w.WriteU64(stats.server.connections_accepted);
  w.WriteU64(stats.server.connections_active);
  w.WriteU64(stats.server.shed_connection_cap);
  w.WriteU64(stats.server.shed_pipeline_cap);
  w.WriteU64(stats.server.shed_queue_cap);
  w.WriteU64(stats.server.backpressure_events);
  w.WriteU64(stats.server.bytes_in);
  w.WriteU64(stats.server.bytes_out);
  w.WriteU64(stats.server.frames_estimate);
  w.WriteU64(stats.server.frames_batch);
  w.WriteU64(stats.server.frames_other);
  w.WriteU32(static_cast<uint32_t>(stats.caches.size()));
  for (const ServiceStats::CacheRow& cache : stats.caches) {
    w.WriteString(cache.name);
    w.WriteU64(cache.entries);
    w.WriteU64(cache.hits);
    w.WriteU64(cache.misses);
    w.WriteU64(cache.evictions);
  }
  // Per-estimator summaries ride index-aligned with the v3 estimator
  // list — no names repeated.
  w.WriteU32(static_cast<uint32_t>(stats.estimators.size()));
  for (const ServiceStats::EstimatorAccounting& e : stats.estimators) {
    EncodeSummary(w, e.latency);
    EncodeSummary(w, e.qerror);
  }
  return w.TakeBuffer();
}

util::Status DecodeStatsExt(std::string_view ext, ServiceStats& stats) {
  Reader r(ext.substr(sizeof(kStatsExtMagic)));
  auto version = r.ReadU8();
  if (!version.ok()) return version.status();
  if (*version < 1) {
    return util::InvalidArgumentError("bad stats extension version " +
                                      std::to_string(*version));
  }
  auto latency = DecodeSummary(r);
  if (!latency.ok()) return latency.status();
  stats.latency = *latency;
  auto batch_lines = DecodeSummary(r);
  if (!batch_lines.ok()) return batch_lines.status();
  stats.batch_lines = *batch_lines;
  auto fold_millis = DecodeSummary(r);
  if (!fold_millis.ok()) return fold_millis.status();
  stats.fold_millis = *fold_millis;
  auto admitted = r.ReadU64();
  if (!admitted.ok()) return admitted.status();
  stats.admitted_weight = *admitted;
  auto rejected = r.ReadU64();
  if (!rejected.ok()) return rejected.status();
  stats.rejected_weight = *rejected;
  auto loads = r.ReadU64();
  if (!loads.ok()) return loads.status();
  stats.snapshot_loads = *loads;
  auto present = r.ReadU8();
  if (!present.ok()) return present.status();
  stats.server.present = *present != 0;
  for (uint64_t* field :
       {&stats.server.connections_accepted, &stats.server.connections_active,
        &stats.server.shed_connection_cap, &stats.server.shed_pipeline_cap,
        &stats.server.shed_queue_cap, &stats.server.backpressure_events,
        &stats.server.bytes_in, &stats.server.bytes_out,
        &stats.server.frames_estimate, &stats.server.frames_batch,
        &stats.server.frames_other}) {
    auto value = r.ReadU64();
    if (!value.ok()) return value.status();
    *field = *value;
  }
  auto cache_count = r.ReadU32();
  if (!cache_count.ok()) return cache_count.status();
  if (*cache_count > r.remaining()) {
    return util::InvalidArgumentError(
        "cache row count exceeds stats extension");
  }
  stats.caches.reserve(*cache_count);
  for (uint32_t i = 0; i < *cache_count; ++i) {
    ServiceStats::CacheRow cache;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    cache.name = std::move(*name);
    for (uint64_t* field : {&cache.entries, &cache.hits, &cache.misses,
                            &cache.evictions}) {
      auto value = r.ReadU64();
      if (!value.ok()) return value.status();
      *field = *value;
    }
    stats.caches.push_back(std::move(cache));
  }
  auto est_count = r.ReadU32();
  if (!est_count.ok()) return est_count.status();
  if (*est_count != stats.estimators.size()) {
    // The summaries are index-aligned with the v3 estimator list; a
    // mismatch means the frame was assembled inconsistently.
    return util::InvalidArgumentError(
        "stats extension estimator count mismatch");
  }
  for (uint32_t i = 0; i < *est_count; ++i) {
    auto est_latency = DecodeSummary(r);
    if (!est_latency.ok()) return est_latency.status();
    stats.estimators[i].latency = *est_latency;
    auto est_qerror = DecodeSummary(r);
    if (!est_qerror.ok()) return est_qerror.status();
    stats.estimators[i].qerror = *est_qerror;
  }
  // Trailing bytes inside the ext string are a future version's fields.
  stats.v4_wire = true;
  return util::Status::OK();
}

// ---- v5 request-id extension -----------------------------------------------

std::string EncodeRequestIdExt(uint64_t id) {
  Writer w;
  w.WriteRaw(
      std::string_view(kRequestIdExtMagic, sizeof(kRequestIdExtMagic)));
  w.WriteU8(1);  // ext version
  w.WriteU64(id);
  return w.TakeBuffer();
}

util::StatusOr<uint64_t> DecodeRequestIdExt(std::string_view ext) {
  Reader r(ext.substr(sizeof(kRequestIdExtMagic)));
  auto version = r.ReadU8();
  if (!version.ok()) return version.status();
  if (*version < 1) {
    return util::InvalidArgumentError("bad request-id extension version " +
                                      std::to_string(*version));
  }
  auto id = r.ReadU64();
  if (!id.ok()) return id.status();
  // Trailing bytes inside the ext string are a future version's fields.
  return *id;
}

// ---- v5 scorecard extension ------------------------------------------------

std::string EncodeScorecardExt(const ServiceStats& stats) {
  Writer w;
  w.WriteRaw(
      std::string_view(kScorecardExtMagic, sizeof(kScorecardExtMagic)));
  w.WriteU8(1);  // ext version
  w.WriteU8(stats.any_drift ? 1 : 0);
  w.WriteU64(static_cast<uint64_t>(stats.scorecard_window_seconds));
  EncodeSummary(w, stats.latency_1m);
  w.WriteDouble(stats.rate_1m);
  w.WriteU32(static_cast<uint32_t>(stats.scorecard.size()));
  for (const obs::ScorecardClassReport& row : stats.scorecard) {
    w.WriteString(row.key);
    w.WriteString(row.display);
    w.WriteU64(row.hits);
    w.WriteU64(row.under);
    w.WriteU64(row.over);
    EncodeSummary(w, row.qerror);
    w.WriteDouble(row.baseline_median);
    w.WriteU8(row.drifted ? 1 : 0);
    w.WriteDouble(row.worst.qerror);
    w.WriteString(row.worst.line);
    w.WriteDouble(row.worst.estimate);
    w.WriteDouble(row.worst.truth);
    w.WriteString(row.worst.estimator);
  }
  return w.TakeBuffer();
}

util::Status DecodeScorecardExt(std::string_view ext, ServiceStats& stats) {
  Reader r(ext.substr(sizeof(kScorecardExtMagic)));
  auto version = r.ReadU8();
  if (!version.ok()) return version.status();
  if (*version < 1) {
    return util::InvalidArgumentError("bad scorecard extension version " +
                                      std::to_string(*version));
  }
  auto drift = r.ReadU8();
  if (!drift.ok()) return drift.status();
  stats.any_drift = *drift != 0;
  auto window = r.ReadU64();
  if (!window.ok()) return window.status();
  stats.scorecard_window_seconds = static_cast<int64_t>(*window);
  auto latency = DecodeSummary(r);
  if (!latency.ok()) return latency.status();
  stats.latency_1m = *latency;
  auto rate = r.ReadDouble();
  if (!rate.ok()) return rate.status();
  stats.rate_1m = *rate;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > r.remaining()) {
    return util::InvalidArgumentError(
        "scorecard class count exceeds extension payload");
  }
  stats.scorecard.clear();
  stats.scorecard.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    obs::ScorecardClassReport row;
    auto key = r.ReadString();
    if (!key.ok()) return key.status();
    row.key = std::move(*key);
    auto display = r.ReadString();
    if (!display.ok()) return display.status();
    row.display = std::move(*display);
    for (uint64_t* field : {&row.hits, &row.under, &row.over}) {
      auto value = r.ReadU64();
      if (!value.ok()) return value.status();
      *field = *value;
    }
    auto qerror = DecodeSummary(r);
    if (!qerror.ok()) return qerror.status();
    row.qerror = *qerror;
    auto baseline = r.ReadDouble();
    if (!baseline.ok()) return baseline.status();
    row.baseline_median = *baseline;
    auto drifted = r.ReadU8();
    if (!drifted.ok()) return drifted.status();
    row.drifted = *drifted != 0;
    auto worst_q = r.ReadDouble();
    if (!worst_q.ok()) return worst_q.status();
    row.worst.qerror = *worst_q;
    auto line = r.ReadString();
    if (!line.ok()) return line.status();
    row.worst.line = std::move(*line);
    auto estimate = r.ReadDouble();
    if (!estimate.ok()) return estimate.status();
    row.worst.estimate = *estimate;
    auto truth = r.ReadDouble();
    if (!truth.ok()) return truth.status();
    row.worst.truth = *truth;
    auto estimator = r.ReadString();
    if (!estimator.ok()) return estimator.status();
    row.worst.estimator = std::move(*estimator);
    stats.scorecard.push_back(std::move(row));
  }
  // Trailing bytes inside the ext string are a future version's fields.
  stats.scorecard_wire = true;
  return util::Status::OK();
}

// ---- v5 corrections extension ----------------------------------------------

std::string EncodeCorrectionsExt(const ServiceStats& stats) {
  Writer w;
  w.WriteRaw(
      std::string_view(kCorrectionsExtMagic, sizeof(kCorrectionsExtMagic)));
  w.WriteU8(1);  // ext version
  w.WriteU8(static_cast<uint8_t>(stats.feedback_mode));
  w.WriteU64(stats.feedback_classes);
  w.WriteU64(stats.feedback_active);
  w.WriteU64(stats.feedback_evictions);
  w.WriteU64(stats.corrections_applied);
  w.WriteU64(stats.corrections_suppressed);
  EncodeSummary(w, stats.qerror_raw_1m);
  EncodeSummary(w, stats.qerror_corrected_1m);
  w.WriteU32(static_cast<uint32_t>(stats.corrections.size()));
  for (const learn::FeedbackClassReport& row : stats.corrections) {
    w.WriteString(row.key);
    w.WriteString(row.display);
    w.WriteU64(row.hits);
    w.WriteU64(row.samples);
    w.WriteDouble(row.correction);
    w.WriteU8(row.active ? 1 : 0);
  }
  return w.TakeBuffer();
}

util::Status DecodeCorrectionsExt(std::string_view ext,
                                  ServiceStats& stats) {
  Reader r(ext.substr(sizeof(kCorrectionsExtMagic)));
  auto version = r.ReadU8();
  if (!version.ok()) return version.status();
  if (*version < 1) {
    return util::InvalidArgumentError(
        "bad corrections extension version " + std::to_string(*version));
  }
  auto mode = r.ReadU8();
  if (!mode.ok()) return mode.status();
  if (*mode > static_cast<uint8_t>(FeedbackMode::kFrozen)) {
    return util::InvalidArgumentError("unknown feedback mode " +
                                      std::to_string(*mode));
  }
  stats.feedback_mode = static_cast<FeedbackMode>(*mode);
  for (uint64_t* field :
       {&stats.feedback_classes, &stats.feedback_active,
        &stats.feedback_evictions, &stats.corrections_applied,
        &stats.corrections_suppressed}) {
    auto value = r.ReadU64();
    if (!value.ok()) return value.status();
    *field = *value;
  }
  auto raw = DecodeSummary(r);
  if (!raw.ok()) return raw.status();
  stats.qerror_raw_1m = *raw;
  auto corrected = DecodeSummary(r);
  if (!corrected.ok()) return corrected.status();
  stats.qerror_corrected_1m = *corrected;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > r.remaining()) {
    return util::InvalidArgumentError(
        "correction class count exceeds extension payload");
  }
  stats.corrections.clear();
  stats.corrections.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    learn::FeedbackClassReport row;
    auto key = r.ReadString();
    if (!key.ok()) return key.status();
    row.key = std::move(*key);
    auto display = r.ReadString();
    if (!display.ok()) return display.status();
    row.display = std::move(*display);
    auto hits = r.ReadU64();
    if (!hits.ok()) return hits.status();
    row.hits = *hits;
    auto samples = r.ReadU64();
    if (!samples.ok()) return samples.status();
    row.samples = *samples;
    auto correction = r.ReadDouble();
    if (!correction.ok()) return correction.status();
    row.correction = *correction;
    auto active = r.ReadU8();
    if (!active.ok()) return active.status();
    row.active = *active != 0;
    stats.corrections.push_back(std::move(row));
  }
  // Trailing bytes inside the ext string are a future version's fields.
  stats.corrections_wire = true;
  return util::Status::OK();
}

void EncodeBatch(Writer& w, const std::vector<BatchEstimateItem>& batch) {
  w.WriteU32(static_cast<uint32_t>(batch.size()));
  for (const BatchEstimateItem& item : batch) {
    w.WriteU8(static_cast<uint8_t>(item.status.code()));
    w.WriteString(item.status.message());
    if (item.status.ok()) EncodeEstimate(w, item.estimate);
  }
}

util::StatusOr<std::vector<BatchEstimateItem>> DecodeBatch(Reader& r) {
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > r.remaining()) {
    return util::InvalidArgumentError(
        "batch item count exceeds frame payload");
  }
  std::vector<BatchEstimateItem> batch;
  batch.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    BatchEstimateItem item;
    auto code = r.ReadU8();
    if (!code.ok()) return code.status();
    if (*code > static_cast<uint8_t>(util::StatusCode::kResourceExhausted)) {
      return util::InvalidArgumentError("unknown batch item status code " +
                                        std::to_string(*code));
    }
    auto message = r.ReadString();
    if (!message.ok()) return message.status();
    if (*code != 0) {
      item.status = util::Status(static_cast<util::StatusCode>(*code),
                                 std::move(*message));
    } else {
      auto estimate = DecodeEstimate(r);
      if (!estimate.ok()) return estimate.status();
      item.estimate = std::move(*estimate);
    }
    batch.push_back(std::move(item));
  }
  return batch;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(request.type));
  if (request.type == MessageType::kBatchEstimate) {
    // v3 batch frame: a counted line list replaces the single text field.
    w.WriteU32(static_cast<uint32_t>(request.lines.size()));
    for (const std::string& line : request.lines) w.WriteString(line);
  } else {
    w.WriteString(request.text);
  }
  // v2 trailing field, encoded only when set: a request without a dataset
  // stays byte-identical to a v1 frame (old servers keep accepting it).
  if (!request.dataset.empty()) w.WriteString(request.dataset);
  // v5 trailing field, same contract: no id, no bytes.
  if (request.request_id != 0) {
    w.WriteString(EncodeRequestIdExt(request.request_id));
  }
  return w.TakeBuffer();
}

util::StatusOr<Request> DecodeRequest(std::string_view payload) {
  Reader r(payload);
  auto type = r.ReadU8();
  if (!type.ok()) return type.status();
  if (!ValidType(*type)) {
    return util::UnimplementedError("unknown request type " +
                                    std::to_string(*type));
  }
  Request request;
  request.type = static_cast<MessageType>(*type);
  if (request.type == MessageType::kBatchEstimate) {
    auto count = r.ReadU32();
    if (!count.ok()) return count.status();
    // Every line occupies at least its u64 length prefix, so a count
    // beyond the remaining payload is corruption — reject it before
    // reserve() turns it into a multi-gigabyte allocation.
    if (*count > r.remaining()) {
      return util::InvalidArgumentError(
          "batch line count exceeds frame payload");
    }
    request.lines.reserve(*count);
    for (uint32_t i = 0; i < *count; ++i) {
      auto line = r.ReadString();
      if (!line.ok()) return line.status();
      request.lines.push_back(std::move(*line));
    }
  } else {
    auto text = r.ReadString();
    if (!text.ok()) return text.status();
    request.text = std::move(*text);
  }
  // v5 trailing-field sequence: at most one dataset name (v2), any
  // number of 0xFF-led extension strings — known ones decoded, unknown
  // ones skipped so a newer peer's extras don't fail the frame.
  bool have_dataset = false;
  while (!r.AtEnd()) {
    auto field = r.ReadString();
    if (!field.ok()) return field.status();
    if (IsExtensionField(*field)) {
      if (HasMagic(*field, kRequestIdExtMagic)) {
        auto id = DecodeRequestIdExt(*field);
        if (!id.ok()) return id.status();
        request.request_id = *id;
      }
      continue;
    }
    if (have_dataset) {
      return util::InvalidArgumentError(
          "duplicate dataset field in request frame");
    }
    have_dataset = true;
    request.dataset = std::move(*field);
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(response.status.code()));
  w.WriteString(response.status.message());
  w.WriteU8(static_cast<uint8_t>(response.type));
  if (response.status.ok()) {
    switch (response.type) {
      case MessageType::kEstimate:
        EncodeEstimate(w, response.estimate);
        break;
      case MessageType::kApplyDeltas:
      case MessageType::kSwapSnapshot:
        EncodeSwap(w, response.swap);
        break;
      case MessageType::kStats:
        EncodeStats(w, response.stats);
        break;
      case MessageType::kPing:
      case MessageType::kShutdown:
        w.WriteString(response.text);
        break;
      case MessageType::kBatchEstimate:
        EncodeBatch(w, response.batch);
        break;
    }
  }
  // v2 echo, encoded only when the server resolved an explicit dataset
  // (responses to v1 requests stay byte-identical to v1 frames).
  if (!response.dataset.empty()) w.WriteString(response.dataset);
  // v4 opt-in: the trailing stats extension, only on OK stats responses
  // whose request asked for it. The v5 scorecard opt-in implies it.
  if (response.status.ok() && response.type == MessageType::kStats &&
      (response.stats.v4_wire || response.stats.scorecard_wire)) {
    w.WriteString(EncodeStatsExt(response.stats));
  }
  // v5 opt-in: the trailing scorecard extension.
  if (response.status.ok() && response.type == MessageType::kStats &&
      response.stats.scorecard_wire) {
    w.WriteString(EncodeScorecardExt(response.stats));
  }
  // Corrections extension, same opt-in; sent only when the service
  // filled corrections state (a feedback-aware v5 server).
  if (response.status.ok() && response.type == MessageType::kStats &&
      response.stats.corrections_wire) {
    w.WriteString(EncodeCorrectionsExt(response.stats));
  }
  // v5 echo, same contract as the dataset echo: only when the request
  // carried an id.
  if (response.request_id != 0) {
    w.WriteString(EncodeRequestIdExt(response.request_id));
  }
  return w.TakeBuffer();
}

util::StatusOr<Response> DecodeResponse(std::string_view payload) {
  Reader r(payload);
  auto code = r.ReadU8();
  if (!code.ok()) return code.status();
  auto message = r.ReadString();
  if (!message.ok()) return message.status();
  auto type = r.ReadU8();
  if (!type.ok()) return type.status();
  if (!ValidType(*type)) {
    return util::InvalidArgumentError("unknown response type " +
                                      std::to_string(*type));
  }
  Response response;
  response.type = static_cast<MessageType>(*type);
  // v5 trailing-field sequence (shared by the error and OK paths): at
  // most one dataset echo (v2), any number of 0xFF-led extension
  // strings — the stats/scorecard extensions on kStats frames, the
  // request-id echo on any frame; unknown magics are a newer peer's
  // fields and are skipped.
  auto read_trailing_fields = [&r, &response]() -> util::Status {
    bool have_dataset = false;
    while (!r.AtEnd()) {
      auto field = r.ReadString();
      if (!field.ok()) return field.status();
      if (IsExtensionField(*field)) {
        if (response.type == MessageType::kStats &&
            HasMagic(*field, kStatsExtMagic)) {
          CEGRAPH_RETURN_IF_ERROR(DecodeStatsExt(*field, response.stats));
        } else if (response.type == MessageType::kStats &&
                   HasMagic(*field, kScorecardExtMagic)) {
          CEGRAPH_RETURN_IF_ERROR(
              DecodeScorecardExt(*field, response.stats));
        } else if (response.type == MessageType::kStats &&
                   HasMagic(*field, kCorrectionsExtMagic)) {
          CEGRAPH_RETURN_IF_ERROR(
              DecodeCorrectionsExt(*field, response.stats));
        } else if (HasMagic(*field, kRequestIdExtMagic)) {
          auto id = DecodeRequestIdExt(*field);
          if (!id.ok()) return id.status();
          response.request_id = *id;
        }
        continue;
      }
      if (have_dataset) {
        return util::InvalidArgumentError(
            "duplicate dataset field in response frame");
      }
      have_dataset = true;
      response.dataset = std::move(*field);
    }
    return util::Status::OK();
  };
  if (*code != 0) {
    if (*code > static_cast<uint8_t>(util::StatusCode::kResourceExhausted)) {
      return util::InvalidArgumentError("unknown status code " +
                                        std::to_string(*code));
    }
    response.status = util::Status(static_cast<util::StatusCode>(*code),
                                   std::move(*message));
    CEGRAPH_RETURN_IF_ERROR(read_trailing_fields());
    return response;
  }
  switch (response.type) {
    case MessageType::kEstimate: {
      auto estimate = DecodeEstimate(r);
      if (!estimate.ok()) return estimate.status();
      response.estimate = std::move(*estimate);
      break;
    }
    case MessageType::kApplyDeltas:
    case MessageType::kSwapSnapshot: {
      auto swap = DecodeSwap(r);
      if (!swap.ok()) return swap.status();
      response.swap = *swap;
      break;
    }
    case MessageType::kStats: {
      auto stats = DecodeStats(r);
      if (!stats.ok()) return stats.status();
      response.stats = std::move(*stats);
      break;
    }
    case MessageType::kPing:
    case MessageType::kShutdown: {
      auto text = r.ReadString();
      if (!text.ok()) return text.status();
      response.text = std::move(*text);
      break;
    }
    case MessageType::kBatchEstimate: {
      auto batch = DecodeBatch(r);
      if (!batch.ok()) return batch.status();
      response.batch = std::move(*batch);
      break;
    }
  }
  CEGRAPH_RETURN_IF_ERROR(read_trailing_fields());
  return response;
}

// ---- Stream framing ----

namespace {

util::Status WriteAll(int fd, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t rc = ::write(fd, data + written, n - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return util::InternalError(std::string("write: ") +
                                 std::strerror(errno));
    }
    written += static_cast<size_t>(rc);
  }
  return util::Status::OK();
}

/// Reads exactly `n` bytes. `eof_ok` marks a clean close at offset 0.
util::Status ReadAll(int fd, char* data, size_t n, bool eof_ok) {
  size_t have = 0;
  while (have < n) {
    const ssize_t rc = ::read(fd, data + have, n - have);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return util::InternalError(std::string("read: ") +
                                 std::strerror(errno));
    }
    if (rc == 0) {
      if (eof_ok && have == 0) return util::NotFoundError(kConnectionClosed);
      return util::OutOfRangeError("truncated frame (peer closed mid-read)");
    }
    have += static_cast<size_t>(rc);
  }
  return util::Status::OK();
}

}  // namespace

util::Status WriteFrame(int fd, std::string_view payload) {
  Writer w;
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteRaw(payload);
  return WriteAll(fd, w.buffer().data(), w.buffer().size());
}

util::StatusOr<std::string> ReadFrame(int fd, uint32_t max_bytes) {
  char prefix[4];
  CEGRAPH_RETURN_IF_ERROR(ReadAll(fd, prefix, 4, /*eof_ok=*/true));
  Reader r(std::string_view(prefix, 4));
  const uint32_t length = *r.ReadU32();
  if (length > max_bytes) {
    return util::InvalidArgumentError(
        "frame of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(max_bytes) + "-byte limit");
  }
  std::string payload(length, '\0');
  CEGRAPH_RETURN_IF_ERROR(ReadAll(fd, payload.data(), length,
                                  /*eof_ok=*/false));
  return payload;
}

bool IsConnectionClosed(const util::Status& status) {
  return status.code() == util::StatusCode::kNotFound &&
         status.message() == kConnectionClosed;
}

// ---- TCP helpers ----

util::StatusOr<int> DialTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::InternalError(std::string("socket: ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::InvalidArgumentError("unparseable IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return util::InternalError("connect " + host + ":" +
                               std::to_string(port) + ": " + detail);
  }
  SetTcpNoDelay(fd);
  return fd;
}

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return util::InternalError(std::string("fcntl(O_NONBLOCK): ") +
                               std::strerror(errno));
  }
  return util::Status::OK();
}

void SetTcpNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

util::StatusOr<int> ListenTcp(const std::string& host, int port,
                              int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::InternalError(std::string("socket: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::InvalidArgumentError("unparseable IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return util::InternalError("bind " + host + ":" + std::to_string(port) +
                               ": " + detail);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return util::InternalError("listen: " + detail);
  }
  return fd;
}

util::StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return util::InternalError(std::string("getsockname: ") +
                               std::strerror(errno));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

util::StatusOr<Response> RoundTrip(int fd, const Request& request) {
  CEGRAPH_RETURN_IF_ERROR(WriteFrame(fd, EncodeRequest(request)));
  auto payload = ReadFrame(fd);
  if (!payload.ok()) return payload.status();
  return DecodeResponse(*payload);
}

}  // namespace cegraph::service::wire
