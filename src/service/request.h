#ifndef CEGRAPH_SERVICE_REQUEST_H_
#define CEGRAPH_SERVICE_REQUEST_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "query/query_graph.h"
#include "util/status.h"

namespace cegraph::service {

/// One estimation request as the service consumes it: a parsed pattern
/// plus optional ground truth (for q-error accounting on replayed
/// workloads).
struct EstimateRequest {
  query::QueryGraph query;
  std::string pattern;        ///< the pattern text as received
  std::string template_name;  ///< empty for ad-hoc patterns
  std::optional<double> truth;
  /// Per-request opt-out of learned feedback corrections (in-process
  /// flag, not a wire field): the estimate serves raw even when the
  /// service runs with feedback on and the class has an active
  /// correction. Learning still happens — opting out of the answer does
  /// not opt out of contributing truth.
  bool no_correction = false;
};

/// Parses one request line. Two shapes are accepted:
///
///   (a)-[3]->(b); (b)-[5]->(c)            ad-hoc pattern (parser syntax)
///   <template> <true_cardinality> <pattern>   a workload-file line
///                                             (query/workload_io.h format)
///
/// so a client can stream a saved workload verbatim, truth included.
/// Comments (leading '#') and blank lines are InvalidArgument — framing
/// happens per request, there is nothing to skip to. The query must parse
/// and be connected; label-range validation happens later, against the
/// serving state's graph.
util::StatusOr<EstimateRequest> ParseRequestLine(std::string_view line);

/// One estimator's answer within a response.
struct EstimatorResult {
  std::string name;
  bool ok = false;
  double estimate = 0;   ///< valid iff ok
  std::string error;     ///< set iff !ok
  double micros = 0;     ///< estimation latency of this estimator
  /// QError(estimate, truth); 0 when the request carried no truth or the
  /// estimator failed. Computed over the *served* estimate — corrected
  /// when a learned correction was applied.
  double qerror = 0;
  /// The estimator's own output before any learned correction; equals
  /// `estimate` when none was applied. Learning always consumes this
  /// value, never the corrected one (a corrected estimate feeding its
  /// own correction would double-apply on convergence).
  double raw_estimate = 0;
  /// The multiplicative correction factor applied (1.0 = none).
  double correction = 1.0;
  /// True when `estimate` = raw_estimate x correction was served.
  bool corrected = false;
};

/// The full answer to one EstimateRequest. Every field is computed against
/// a single serving state (one engine, one epoch) acquired once at request
/// start — the consistency unit the swap-under-load bench asserts.
struct EstimateResponse {
  uint64_t epoch = 0;          ///< graph epoch of the serving state
  uint64_t state_version = 0;  ///< hot-swap generation of the state
  double total_micros = 0;     ///< wall time from admission to response
  bool has_truth = false;
  double truth = 0;
  std::vector<EstimatorResult> results;
};

/// One line's outcome inside a batch estimate (wire v3): the request-level
/// status this line would have earned as its own v1 estimate frame
/// (parse failure, label out of range, ...) plus the estimate body on OK.
struct BatchEstimateItem {
  util::Status status;
  EstimateResponse estimate;  ///< meaningful iff status.ok()
};

/// Admission weight of one estimate request: its pattern size (query
/// edges, min 1). This is the unit the cost-aware AdmissionController
/// prices — a batch frame weighs the sum of its lines' weights.
int64_t RequestWeight(const query::QueryGraph& query);

}  // namespace cegraph::service

#endif  // CEGRAPH_SERVICE_REQUEST_H_
