#include "query/query_graph.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <numeric>

namespace cegraph::query {

util::StatusOr<QueryGraph> QueryGraph::Create(
    uint32_t num_vertices, std::vector<QueryEdge> edges,
    std::vector<graph::VertexLabel> vertex_constraints) {
  if (!vertex_constraints.empty() &&
      vertex_constraints.size() != num_vertices) {
    return util::InvalidArgumentError("vertex constraint arity mismatch");
  }
  if (edges.size() > 32) {
    return util::InvalidArgumentError("queries are limited to 32 edges");
  }
  if (num_vertices > 32) {
    return util::InvalidArgumentError("queries are limited to 32 vertices");
  }
  for (const QueryEdge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return util::InvalidArgumentError("query edge endpoint out of range");
    }
  }
  QueryGraph q;
  q.num_vertices_ = num_vertices;
  q.edges_ = std::move(edges);
  q.vertex_constraints_ = std::move(vertex_constraints);
  q.incident_.assign(num_vertices, {});
  for (uint32_t i = 0; i < q.edges_.size(); ++i) {
    q.incident_[q.edges_[i].src].push_back(i);
    if (q.edges_[i].dst != q.edges_[i].src) {
      q.incident_[q.edges_[i].dst].push_back(i);
    }
  }
  return q;
}

VertexSet QueryGraph::VerticesOf(EdgeSet s) const {
  VertexSet v = 0;
  for (uint32_t i = 0; i < num_edges(); ++i) {
    if (s & (EdgeSet{1} << i)) {
      v |= VertexSet{1} << edges_[i].src;
      v |= VertexSet{1} << edges_[i].dst;
    }
  }
  return v;
}

bool QueryGraph::IsConnectedSubset(EdgeSet s) const {
  if (s == 0) return false;
  // BFS over edges: two edges are adjacent if they share a vertex.
  const uint32_t first = static_cast<uint32_t>(std::countr_zero(s));
  EdgeSet visited = EdgeSet{1} << first;
  VertexSet frontier_vertices = (VertexSet{1} << edges_[first].src) |
                                (VertexSet{1} << edges_[first].dst);
  bool grew = true;
  while (grew) {
    grew = false;
    for (uint32_t i = 0; i < num_edges(); ++i) {
      const EdgeSet bit = EdgeSet{1} << i;
      if (!(s & bit) || (visited & bit)) continue;
      const VertexSet ev = (VertexSet{1} << edges_[i].src) |
                           (VertexSet{1} << edges_[i].dst);
      if (ev & frontier_vertices) {
        visited |= bit;
        frontier_vertices |= ev;
        grew = true;
      }
    }
  }
  return visited == s;
}

bool QueryGraph::IsConnected() const {
  if (num_edges() == 0) return num_vertices() <= 1;
  if (!IsConnectedSubset(AllEdges())) return false;
  // Also require no isolated vertices.
  return std::popcount(VerticesOf(AllEdges())) ==
         static_cast<int>(num_vertices_);
}

int QueryGraph::CyclomaticNumber(EdgeSet s) const {
  if (s == 0) return 0;
  // Count components via union-find over the touched vertices.
  std::vector<int> parent(num_vertices_);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  int edge_count = 0;
  for (uint32_t i = 0; i < num_edges(); ++i) {
    if (!(s & (EdgeSet{1} << i))) continue;
    ++edge_count;
    const int a = find(static_cast<int>(edges_[i].src));
    const int b = find(static_cast<int>(edges_[i].dst));
    if (a != b) parent[a] = b;
  }
  const VertexSet vs = VerticesOf(s);
  int vertex_count = std::popcount(vs);
  int components = 0;
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    if ((vs & (VertexSet{1} << v)) && find(static_cast<int>(v)) ==
                                          static_cast<int>(v)) {
      ++components;
    }
  }
  // Union-find roots may not be representative vertices of vs only; count
  // roots among touched vertices.
  (void)vertex_count;
  return edge_count - std::popcount(vs) + components;
}

QueryGraph QueryGraph::ExtractPattern(EdgeSet s,
                                      std::vector<QVertex>* vertex_map) const {
  std::vector<int> remap(num_vertices_, -1);
  std::vector<QVertex> rev;
  std::vector<QueryEdge> sub_edges;
  for (uint32_t i = 0; i < num_edges(); ++i) {
    if (!(s & (EdgeSet{1} << i))) continue;
    const QueryEdge& e = edges_[i];
    for (QVertex v : {e.src, e.dst}) {
      if (remap[v] < 0) {
        remap[v] = static_cast<int>(rev.size());
        rev.push_back(v);
      }
    }
    sub_edges.push_back({static_cast<QVertex>(remap[e.src]),
                         static_cast<QVertex>(remap[e.dst]), e.label});
  }
  if (vertex_map != nullptr) *vertex_map = rev;
  std::vector<graph::VertexLabel> sub_constraints;
  if (!vertex_constraints_.empty()) {
    sub_constraints.reserve(rev.size());
    for (QVertex original : rev) {
      sub_constraints.push_back(vertex_constraints_[original]);
    }
  }
  auto result = Create(static_cast<uint32_t>(rev.size()),
                       std::move(sub_edges), std::move(sub_constraints));
  return std::move(result).value();
}

namespace {

std::string CodeUnderPermutation(
    const std::vector<QueryEdge>& edges,
    const std::vector<graph::VertexLabel>& constraints,
    const std::vector<uint32_t>& perm) {
  std::vector<std::array<uint32_t, 3>> mapped;
  mapped.reserve(edges.size());
  for (const QueryEdge& e : edges) {
    mapped.push_back({perm[e.src], perm[e.dst], e.label});
  }
  std::sort(mapped.begin(), mapped.end());
  std::string code;
  code.reserve(mapped.size() * 6);
  for (const auto& t : mapped) {
    code.push_back(static_cast<char>('0' + t[0]));
    code.push_back(static_cast<char>('0' + t[1]));
    code.append(std::to_string(t[2]));
    code.push_back(';');
  }
  if (!constraints.empty()) {
    // Vertex-label constraints in permuted vertex order.
    std::vector<graph::VertexLabel> permuted(constraints.size());
    for (uint32_t v = 0; v < constraints.size(); ++v) {
      permuted[perm[v]] = constraints[v];
    }
    code.push_back('|');
    for (graph::VertexLabel c : permuted) {
      code.append(c == QueryGraph::kAnyVertexLabel ? "*"
                                                   : std::to_string(c));
      code.push_back(',');
    }
  }
  return code;
}

}  // namespace

std::string QueryGraph::CanonicalCode() const {
  auto cached = std::atomic_load_explicit(&canonical_code_,
                                          std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  auto computed = std::make_shared<const std::string>(ComputeCanonicalCode());
  std::atomic_store_explicit(&canonical_code_, computed,
                             std::memory_order_release);
  return *computed;
}

std::string QueryGraph::ComputeCanonicalCode() const {
  std::vector<uint32_t> perm(num_vertices_);
  std::iota(perm.begin(), perm.end(), 0);
  // Drop all-wildcard constraint vectors so labeled and unlabeled
  // constructions of the same pattern share a code.
  std::vector<graph::VertexLabel> constraints =
      has_vertex_constraints() ? vertex_constraints_
                               : std::vector<graph::VertexLabel>{};
  if (num_vertices_ > kCanonicalVertexLimit) {
    return "id:" + CodeUnderPermutation(edges_, constraints, perm);
  }
  std::string best = CodeUnderPermutation(edges_, constraints, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::string code = CodeUnderPermutation(edges_, constraints, perm);
    if (code < best) best = std::move(code);
  }
  return best;
}

}  // namespace cegraph::query
