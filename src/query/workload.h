#ifndef CEGRAPH_QUERY_WORKLOAD_H_
#define CEGRAPH_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "matching/matcher.h"
#include "query/query_graph.h"
#include "query/templates.h"
#include "util/random.h"
#include "util/status.h"

namespace cegraph::query {

/// One workload query together with its exact cardinality (the ground truth
/// for q-error computation).
struct WorkloadQuery {
  QueryGraph query;
  std::string template_name;
  double true_cardinality = 0;
};

/// Workload-generation knobs (§6.1 of the paper).
struct WorkloadOptions {
  /// Query instances to generate per template.
  int instances_per_template = 20;
  uint64_t seed = 1;
  /// Step budget for exact counting of one query; queries whose ground
  /// truth cannot be computed within the budget are dropped (the paper used
  /// per-dataset time limits for the same purpose).
  uint64_t count_step_budget = 200'000'000;
  /// Queries with more results than this are dropped (keeps ground truth
  /// within double-exact range and experiments fast).
  double max_cardinality = 1e12;
  /// Retries per requested instance before giving up on it.
  int max_attempts_per_instance = 40;
  /// Probability of flipping each template edge's direction at
  /// instantiation (Fig. 8 templates are undirected).
  double flip_probability = 0.5;
  /// Probability that each query vertex is constrained to the vertex
  /// label it matched in the sampled embedding (the paper's vertex-label
  /// extension; 0 = vertex-unlabeled queries).
  double vertex_label_probability = 0.0;
};

/// Instantiates `templates` against `g`: randomizes edge directions, binds
/// labels by sampling a real embedding (guaranteeing non-empty output),
/// deduplicates, and computes exact cardinalities. Deterministic given
/// `options.seed`.
util::StatusOr<std::vector<WorkloadQuery>> GenerateWorkload(
    const graph::Graph& g, const std::vector<QueryTemplate>& templates,
    const WorkloadOptions& options);

/// Filters to cyclic queries whose only chordless cycles are triangles
/// (the population of the paper's Fig. 10).
std::vector<WorkloadQuery> FilterTrianglesOnly(
    const std::vector<WorkloadQuery>& workload);

/// Filters to queries containing a chordless cycle of 4 or more edges
/// (the population of the paper's Fig. 11).
std::vector<WorkloadQuery> FilterLargeCycles(
    const std::vector<WorkloadQuery>& workload);

/// Filters to acyclic queries.
std::vector<WorkloadQuery> FilterAcyclic(
    const std::vector<WorkloadQuery>& workload);

}  // namespace cegraph::query

#endif  // CEGRAPH_QUERY_WORKLOAD_H_
