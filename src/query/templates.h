#ifndef CEGRAPH_QUERY_TEMPLATES_H_
#define CEGRAPH_QUERY_TEMPLATES_H_

#include <string>
#include <vector>

#include "query/query_graph.h"

namespace cegraph::query {

/// A query *shape*: a pattern graph whose labels are placeholders (0) and
/// whose edge directions are randomized at instantiation time (the paper's
/// Fig. 8 explicitly omits directions). Workload generation binds labels by
/// sampling real embeddings (§6.1).
struct QueryTemplate {
  std::string name;
  QueryGraph shape;
};

/// --- basic shapes -------------------------------------------------------

/// Path with `k` edges: a1 -> a2 -> ... -> a_{k+1}.
QueryGraph PathShape(int k);
/// Star with `k` edges out of a central vertex.
QueryGraph StarShape(int k);
/// Cycle with `k` edges.
QueryGraph CycleShape(int k);
/// Caterpillar tree with `k` edges and diameter `d` (2 <= d <= k): a spine
/// path of `d` edges with the remaining k-d edges attached as leaves of the
/// spine's midpoint. These are the Fig.-8-style acyclic templates covering
/// every depth between star (d=2) and path (d=k).
QueryGraph CaterpillarShape(int k, int d);
/// Complete graph on 4 vertices (6 edges).
QueryGraph CliqueK4Shape();
/// 4-cycle with a crossing (chord) edge: 5 edges, cycles are triangles only.
QueryGraph DiamondShape();
/// Two triangles sharing one vertex: 6 edges ("flower"/bowtie).
QueryGraph BowtieShape();
/// Square with two triangles on adjacent sides (8 edges).
QueryGraph SquareTwoTrianglesShape();
/// Square plus a triangle sharing one edge (7 edges).
QueryGraph SquareTriangleShape();
/// `paths` parallel paths of `len` edges each between a common source and
/// sink ("petal" queries from G-CARE).
QueryGraph PetalShape(int paths, int len);

/// --- workload template suites (DESIGN.md §4) ------------------------------

/// JOB-like acyclic join templates: four 4-edge, two 5-edge, one 6-edge
/// trees (the shape mix of the transformed JOB workload, §6.1).
std::vector<QueryTemplate> JobLikeTemplates();

/// The Acyclic workload of §6.1: 6-, 7-, 8-edge trees, one per diameter
/// d in [2, k] (18 templates -> 360 queries at 20 instances each).
std::vector<QueryTemplate> AcyclicTemplates();

/// The Cyclic workload of §6.1 (templates from reference [20]): 4-cycle,
/// diamond with crossing edge, 6-cycle, K4, two triangles with a common
/// vertex, square with two triangles, square with a triangle.
std::vector<QueryTemplate> CyclicTemplates();

/// G-CARE-style acyclic templates: 3-, 6-, 9-, 12-edge stars and paths plus
/// random trees.
std::vector<QueryTemplate> GCareAcyclicTemplates();

/// G-CARE-style cyclic templates: 6- and 9-edge cycles, 6-edge clique (K4),
/// 6-edge flower, 6- and 9-edge petals.
std::vector<QueryTemplate> GCareCyclicTemplates();

/// The suite names benches and tools accept on the command line, mapped to
/// the template sets above: "job", "acyclic", "cyclic", "gcare-acyclic",
/// "gcare-cyclic". The single source of truth for that mapping — the
/// figure benches (bench_common.h) and cegraph_stats both resolve through
/// it. NotFound for unknown names.
util::StatusOr<std::vector<QueryTemplate>> SuiteTemplatesByName(
    const std::string& name);

/// The accepted suite names, in display order.
std::vector<std::string> SuiteNames();

}  // namespace cegraph::query

#endif  // CEGRAPH_QUERY_TEMPLATES_H_
