#include "query/workload_io.h"

#include <fstream>
#include <sstream>

#include "query/parser.h"

namespace cegraph::query {

util::Status WriteWorkloadText(const std::vector<WorkloadQuery>& workload,
                               std::ostream& os) {
  os << "# cegraph workload: template_name true_cardinality pattern\n";
  os.precision(17);
  for (const WorkloadQuery& wq : workload) {
    if (wq.template_name.find_first_of(" \t") != std::string::npos) {
      return util::InvalidArgumentError(
          "template names must not contain whitespace: " + wq.template_name);
    }
    os << wq.template_name << " " << wq.true_cardinality << " "
       << FormatQuery(wq.query) << "\n";
  }
  if (!os) return util::InternalError("write failed");
  return util::Status::OK();
}

util::StatusOr<std::vector<WorkloadQuery>> ReadWorkloadText(
    std::istream& is) {
  std::vector<WorkloadQuery> out;
  std::string line;
  size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line);
    WorkloadQuery wq;
    std::string pattern;
    if (!(fields >> wq.template_name >> wq.true_cardinality) ||
        !std::getline(fields, pattern)) {
      return util::InvalidArgumentError("malformed workload line " +
                                        std::to_string(line_number));
    }
    auto q = ParseQuery(pattern);
    if (!q.ok()) {
      return util::InvalidArgumentError(
          "line " + std::to_string(line_number) + ": " +
          q.status().message());
    }
    wq.query = std::move(*q);
    out.push_back(std::move(wq));
  }
  return out;
}

util::Status SaveWorkload(const std::vector<WorkloadQuery>& workload,
                          const std::string& path) {
  std::ofstream os(path);
  if (!os) return util::NotFoundError("cannot open for writing: " + path);
  return WriteWorkloadText(workload, os);
}

util::StatusOr<std::vector<WorkloadQuery>> LoadWorkload(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return util::NotFoundError("cannot open: " + path);
  return ReadWorkloadText(is);
}

}  // namespace cegraph::query
