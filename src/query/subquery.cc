#include "query/subquery.h"

#include <algorithm>
#include <bit>

namespace cegraph::query {

std::vector<EdgeSet> ConnectedSubsets(const QueryGraph& q, int max_edges) {
  const uint32_t m = q.num_edges();
  const int limit = max_edges < 0 ? static_cast<int>(m) : max_edges;
  std::vector<EdgeSet> out;
  // Queries have <= 12 edges in practice, so a filtered scan over all 2^m
  // subsets is fast and simple.
  const EdgeSet all = q.AllEdges();
  for (EdgeSet s = 1; s <= all; ++s) {
    if (std::popcount(s) > limit) continue;
    if (q.IsConnectedSubset(s)) out.push_back(s);
    if (s == all) break;  // avoid overflow when m == 32
  }
  std::sort(out.begin(), out.end(), [](EdgeSet a, EdgeSet b) {
    const int pa = std::popcount(a), pb = std::popcount(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });
  return out;
}

std::vector<EdgeSet> ConnectedSubsetsOfSize(const QueryGraph& q, int k) {
  std::vector<EdgeSet> all = ConnectedSubsets(q, k);
  std::vector<EdgeSet> out;
  for (EdgeSet s : all) {
    if (std::popcount(s) == k) out.push_back(s);
  }
  return out;
}

namespace {

/// DFS cycle enumeration on the undirected multigraph. To avoid duplicates,
/// each cycle is only reported from its lowest-numbered edge and in one
/// rotational direction.
void FindCyclesFrom(const QueryGraph& q, uint32_t start_edge, QVertex start,
                    QVertex current, EdgeSet used,
                    std::vector<EdgeSet>& out) {
  for (uint32_t ei : q.IncidentEdges(current)) {
    if (ei < start_edge) continue;  // canonical: no edge below the start edge
    const EdgeSet bit = EdgeSet{1} << ei;
    if (used & bit) continue;
    const QueryEdge& e = q.edge(ei);
    const QVertex next = e.src == current ? e.dst : e.src;
    if (next == start) {
      out.push_back(used | bit);
      continue;
    }
    // Simple cycle: the next vertex must be unvisited. A vertex is visited
    // iff it touches a used edge (start handled above).
    bool visited = false;
    for (uint32_t uj = 0; uj < q.num_edges() && !visited; ++uj) {
      if (!(used & (EdgeSet{1} << uj))) continue;
      const QueryEdge& ue = q.edge(uj);
      visited = (ue.src == next || ue.dst == next);
    }
    if (visited) continue;
    FindCyclesFrom(q, start_edge, start, next, used | bit, out);
  }
}

}  // namespace

std::vector<EdgeSet> SimpleCycles(const QueryGraph& q) {
  std::vector<EdgeSet> out;
  for (uint32_t ei = 0; ei < q.num_edges(); ++ei) {
    const QueryEdge& e = q.edge(ei);
    if (e.src == e.dst) {
      out.push_back(EdgeSet{1} << ei);  // self-loop is a 1-cycle
      continue;
    }
    FindCyclesFrom(q, ei, e.src, e.dst, EdgeSet{1} << ei, out);
  }
  // Each cycle of length >= 3 is found twice (both directions); dedupe.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// A cycle (as an edge set) is chordless if no edge outside the cycle
/// connects two of its vertices.
bool IsChordless(const QueryGraph& q, EdgeSet cycle) {
  const VertexSet on_cycle = q.VerticesOf(cycle);
  for (uint32_t ei = 0; ei < q.num_edges(); ++ei) {
    const EdgeSet bit = EdgeSet{1} << ei;
    if (cycle & bit) continue;
    const QueryEdge& e = q.edge(ei);
    if ((on_cycle & (VertexSet{1} << e.src)) &&
        (on_cycle & (VertexSet{1} << e.dst))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool HasChordlessCycleLongerThan(const QueryGraph& q, int k) {
  return LargestChordlessCycle(q) > k;
}

int LargestChordlessCycle(const QueryGraph& q) {
  int best = 0;
  for (EdgeSet cycle : SimpleCycles(q)) {
    if (!IsChordless(q, cycle)) continue;
    best = std::max(best, std::popcount(cycle));
  }
  return best;
}

std::vector<QVertex> FindIsomorphism(const QueryGraph& a,
                                     const QueryGraph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges()) {
    return {};
  }
  const uint32_t n = a.num_vertices();
  std::vector<QVertex> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;

  auto b_has = [&](QVertex s, QVertex d, graph::Label l) {
    for (const QueryEdge& e : b.edges()) {
      if (e.src == s && e.dst == d && e.label == l) return true;
    }
    return false;
  };
  // Multisets must match exactly; since |E(a)| == |E(b)| it suffices that
  // every edge of a maps onto a distinct edge of b. For the tiny patterns
  // here parallel identical edges do not occur after dedup, so a simple
  // membership check is sufficient.
  do {
    bool ok = true;
    for (QVertex v = 0; v < n && ok; ++v) {
      ok = a.vertex_constraint(v) == b.vertex_constraint(perm[v]);
    }
    for (const QueryEdge& e : a.edges()) {
      if (!ok) break;
      if (!b_has(perm[e.src], perm[e.dst], e.label)) {
        ok = false;
        break;
      }
    }
    if (ok) return perm;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return {};
}

}  // namespace cegraph::query
