#ifndef CEGRAPH_QUERY_SUBQUERY_H_
#define CEGRAPH_QUERY_SUBQUERY_H_

#include <vector>

#include "query/query_graph.h"

namespace cegraph::query {

/// Enumerates all connected non-empty edge subsets of `q` with at most
/// `max_edges` edges (all sizes if max_edges < 0). The result is sorted by
/// popcount then value, so smaller sub-queries come first. These subsets are
/// exactly the vertices of the paper's CEG_O (§4.2).
std::vector<EdgeSet> ConnectedSubsets(const QueryGraph& q, int max_edges = -1);

/// Enumerates the connected subsets of size exactly `k`.
std::vector<EdgeSet> ConnectedSubsetsOfSize(const QueryGraph& q, int k);

/// Returns all simple cycles of the underlying undirected multigraph of `q`,
/// each as an EdgeSet. Cycles are found by DFS enumeration; intended for the
/// small query graphs of this domain (<= 12 edges).
std::vector<EdgeSet> SimpleCycles(const QueryGraph& q);

/// True iff `q` contains a *chordless* cycle with more than `k` edges.
/// The paper's Fig. 10 uses cyclic queries whose only cycles are triangles
/// (no chordless cycle longer than 3); Fig. 11 uses the complement.
bool HasChordlessCycleLongerThan(const QueryGraph& q, int k);

/// Length of the largest chordless cycle (0 if acyclic).
int LargestChordlessCycle(const QueryGraph& q);

/// Finds an isomorphism from `a` to `b`: a vertex bijection `map` such that
/// (u --l--> v) is an edge of `a` iff (map[u] --l--> map[v]) is an edge of
/// `b`. Returns an empty vector if none exists. Brute force over vertex
/// permutations; intended for the small patterns cached by the statistics
/// catalogs (<= 4 vertices).
std::vector<QVertex> FindIsomorphism(const QueryGraph& a,
                                     const QueryGraph& b);

}  // namespace cegraph::query

#endif  // CEGRAPH_QUERY_SUBQUERY_H_
