#ifndef CEGRAPH_QUERY_WORKLOAD_IO_H_
#define CEGRAPH_QUERY_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "query/workload.h"
#include "util/status.h"

namespace cegraph::query {

/// Text serialization for workloads, one query per line:
///
///   # comments allowed
///   <template_name> <true_cardinality> <pattern>
///
/// where <pattern> uses the parser syntax (query/parser.h). Ground truth
/// travels with the query so expensive exact counts are computed once and
/// reused across bench runs and machines.
util::Status WriteWorkloadText(const std::vector<WorkloadQuery>& workload,
                               std::ostream& os);
util::StatusOr<std::vector<WorkloadQuery>> ReadWorkloadText(std::istream& is);

util::Status SaveWorkload(const std::vector<WorkloadQuery>& workload,
                          const std::string& path);
util::StatusOr<std::vector<WorkloadQuery>> LoadWorkload(
    const std::string& path);

}  // namespace cegraph::query

#endif  // CEGRAPH_QUERY_WORKLOAD_IO_H_
