#include "query/templates.h"

namespace cegraph::query {

namespace {

QueryGraph Make(uint32_t n, std::vector<QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

}  // namespace

QueryGraph PathShape(int k) {
  std::vector<QueryEdge> edges;
  for (int i = 0; i < k; ++i) {
    edges.push_back({static_cast<QVertex>(i), static_cast<QVertex>(i + 1), 0});
  }
  return Make(static_cast<uint32_t>(k + 1), std::move(edges));
}

QueryGraph StarShape(int k) {
  std::vector<QueryEdge> edges;
  for (int i = 0; i < k; ++i) {
    edges.push_back({0, static_cast<QVertex>(i + 1), 0});
  }
  return Make(static_cast<uint32_t>(k + 1), std::move(edges));
}

QueryGraph CycleShape(int k) {
  std::vector<QueryEdge> edges;
  for (int i = 0; i < k; ++i) {
    edges.push_back({static_cast<QVertex>(i),
                     static_cast<QVertex>((i + 1) % k), 0});
  }
  return Make(static_cast<uint32_t>(k), std::move(edges));
}

QueryGraph CaterpillarShape(int k, int d) {
  // Spine path 0..d; extra leaves attached to the spine midpoint.
  std::vector<QueryEdge> edges;
  for (int i = 0; i < d; ++i) {
    edges.push_back({static_cast<QVertex>(i), static_cast<QVertex>(i + 1), 0});
  }
  const QVertex mid = static_cast<QVertex>(d / 2);
  QVertex next = static_cast<QVertex>(d + 1);
  for (int i = d; i < k; ++i) {
    edges.push_back({mid, next, 0});
    ++next;
  }
  return Make(next, std::move(edges));
}

QueryGraph CliqueK4Shape() {
  return Make(4, {{0, 1, 0},
                  {0, 2, 0},
                  {0, 3, 0},
                  {1, 2, 0},
                  {1, 3, 0},
                  {2, 3, 0}});
}

QueryGraph DiamondShape() {
  // 4-cycle 0-1-2-3 plus the chord 0-2.
  return Make(4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}, {0, 2, 0}});
}

QueryGraph BowtieShape() {
  // Triangles 0-1-2 and 0-3-4 sharing vertex 0.
  return Make(5, {{0, 1, 0},
                  {1, 2, 0},
                  {2, 0, 0},
                  {0, 3, 0},
                  {3, 4, 0},
                  {4, 0, 0}});
}

QueryGraph SquareTwoTrianglesShape() {
  // Square 0-1-2-3, triangle apexes 4 (on side 0-1) and 5 (on side 1-2).
  return Make(6, {{0, 1, 0},
                  {1, 2, 0},
                  {2, 3, 0},
                  {3, 0, 0},
                  {0, 4, 0},
                  {4, 1, 0},
                  {1, 5, 0},
                  {5, 2, 0}});
}

QueryGraph SquareTriangleShape() {
  // Square 0-1-2-3 plus a triangle on side 0-1 with apex 4.
  return Make(5, {{0, 1, 0},
                  {1, 2, 0},
                  {2, 3, 0},
                  {3, 0, 0},
                  {0, 4, 0},
                  {4, 1, 0},
                  {0, 2, 0}});
}

QueryGraph PetalShape(int paths, int len) {
  // `paths` internally-disjoint paths of `len` edges between 0 and 1.
  std::vector<QueryEdge> edges;
  QVertex next = 2;
  for (int p = 0; p < paths; ++p) {
    QVertex prev = 0;
    for (int i = 0; i < len - 1; ++i) {
      edges.push_back({prev, next, 0});
      prev = next++;
    }
    edges.push_back({prev, 1, 0});
  }
  return Make(next, std::move(edges));
}

std::vector<QueryTemplate> JobLikeTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back({"job_star4", StarShape(4)});
  out.push_back({"job_path4", PathShape(4)});
  out.push_back({"job_fork4", CaterpillarShape(4, 3)});
  // Twin star: centers 0 and 1 joined, leaves 2,3 on 0 and 4 on 1.
  out.push_back({"job_twinstar4",
                 Make(5, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {1, 4, 0}})});
  out.push_back({"job_cat5_d3", CaterpillarShape(5, 3)});
  out.push_back({"job_cat5_d4", CaterpillarShape(5, 4)});
  out.push_back({"job_cat6_d4", CaterpillarShape(6, 4)});
  return out;
}

std::vector<QueryTemplate> AcyclicTemplates() {
  std::vector<QueryTemplate> out;
  for (int k : {6, 7, 8}) {
    for (int d = 2; d <= k; ++d) {
      out.push_back({"acyclic_k" + std::to_string(k) + "_d" +
                         std::to_string(d),
                     CaterpillarShape(k, d)});
    }
  }
  return out;
}

std::vector<QueryTemplate> CyclicTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back({"cyc_triangle", CycleShape(3)});
  out.push_back({"cyc_4cycle", CycleShape(4)});
  out.push_back({"cyc_diamond", DiamondShape()});
  out.push_back({"cyc_6cycle", CycleShape(6)});
  out.push_back({"cyc_k4", CliqueK4Shape()});
  out.push_back({"cyc_bowtie", BowtieShape()});
  out.push_back({"cyc_square_2tri", SquareTwoTrianglesShape()});
  out.push_back({"cyc_square_tri", SquareTriangleShape()});
  return out;
}

std::vector<QueryTemplate> GCareAcyclicTemplates() {
  std::vector<QueryTemplate> out;
  for (int k : {3, 6, 9, 12}) {
    out.push_back({"gcare_path" + std::to_string(k), PathShape(k)});
    out.push_back({"gcare_star" + std::to_string(k), StarShape(k)});
  }
  for (int k : {6, 9, 12}) {
    out.push_back({"gcare_tree" + std::to_string(k),
                   CaterpillarShape(k, (k + 2) / 2)});
  }
  return out;
}

std::vector<QueryTemplate> GCareCyclicTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back({"gcare_cycle6", CycleShape(6)});
  out.push_back({"gcare_cycle9", CycleShape(9)});
  out.push_back({"gcare_clique6", CliqueK4Shape()});
  out.push_back({"gcare_flower6", BowtieShape()});
  out.push_back({"gcare_petal6", PetalShape(2, 3)});
  out.push_back({"gcare_petal9", PetalShape(3, 3)});
  return out;
}

util::StatusOr<std::vector<QueryTemplate>> SuiteTemplatesByName(
    const std::string& name) {
  if (name == "job") return JobLikeTemplates();
  if (name == "acyclic") return AcyclicTemplates();
  if (name == "cyclic") return CyclicTemplates();
  if (name == "gcare-acyclic") return GCareAcyclicTemplates();
  if (name == "gcare-cyclic") return GCareCyclicTemplates();
  return util::NotFoundError("unknown workload suite \"" + name + "\"");
}

std::vector<std::string> SuiteNames() {
  return {"job", "acyclic", "cyclic", "gcare-acyclic", "gcare-cyclic"};
}

}  // namespace cegraph::query
