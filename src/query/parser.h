#ifndef CEGRAPH_QUERY_PARSER_H_
#define CEGRAPH_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "query/query_graph.h"
#include "util/status.h"

namespace cegraph::query {

/// Parses a subgraph query from a compact Cypher-like pattern syntax:
///
///   (a)-[3]->(b); (b)-[7]->(c); (c)<-[3]-(a)
///
/// Each clause is one query edge: named variables in parentheses, a
/// numeric edge label in brackets, and an arrow giving the direction.
/// Clauses are separated by ';' or ','. Variables are mapped to dense
/// query-vertex ids in first-occurrence order. Whitespace is free.
///
/// A variable may carry a vertex-label constraint, written once as
/// "(a:2)": the variable then only matches data vertices with vertex
/// label 2 (the paper's vertex-label extension). Re-declaring a variable
/// with a conflicting constraint is an error.
util::StatusOr<QueryGraph> ParseQuery(std::string_view text);

/// Renders a query in the same syntax (variables named a0, a1, ...).
std::string FormatQuery(const QueryGraph& q);

}  // namespace cegraph::query

#endif  // CEGRAPH_QUERY_PARSER_H_
