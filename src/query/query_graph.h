#ifndef CEGRAPH_QUERY_QUERY_GRAPH_H_
#define CEGRAPH_QUERY_QUERY_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace cegraph::query {

/// Query-vertex identifier (a join attribute a_i in the paper's notation).
using QVertex = uint32_t;

/// One query edge: a base relation R_label(src, dst) in the join query.
struct QueryEdge {
  QVertex src = 0;
  QVertex dst = 0;
  graph::Label label = 0;

  friend bool operator==(const QueryEdge& a, const QueryEdge& b) = default;
};

/// A set of query edges, as a bitmask over edge indices. Supports queries of
/// up to 32 edges (the paper's largest query has 12).
using EdgeSet = uint32_t;

/// A set of query vertices (attributes), as a bitmask. Supports up to 32
/// query vertices.
using VertexSet = uint32_t;

/// An edge-labeled subgraph query Q = R_1 ⋈ ... ⋈ R_m over binary relations,
/// represented as a directed labeled pattern graph (§2 of the paper).
///
/// Vertices are the query's attributes; each edge (u --l--> v) is one
/// occurrence of relation R_l joined on attributes u (source column) and v
/// (destination column). Self-loops are allowed; parallel edges (even with
/// the same label) are distinct query edges.
class QueryGraph {
 public:
  /// Wildcard vertex-label constraint: matches any data vertex.
  static constexpr graph::VertexLabel kAnyVertexLabel = 0xFFFFFFFF;

  QueryGraph() = default;

  /// Builds a query. Fails if any endpoint is >= num_vertices.
  /// `vertex_constraints` optionally pins query vertices to data
  /// vertex-labels (kAnyVertexLabel = unconstrained); empty means all
  /// unconstrained. This is the paper's vertex-label extension (§6.1).
  static util::StatusOr<QueryGraph> Create(
      uint32_t num_vertices, std::vector<QueryEdge> edges,
      std::vector<graph::VertexLabel> vertex_constraints = {});

  /// The label constraint of query vertex `v`.
  graph::VertexLabel vertex_constraint(QVertex v) const {
    return vertex_constraints_.empty() ? kAnyVertexLabel
                                       : vertex_constraints_[v];
  }
  /// True iff any vertex carries a non-wildcard constraint.
  bool has_vertex_constraints() const {
    for (graph::VertexLabel c : vertex_constraints_) {
      if (c != kAnyVertexLabel) return true;
    }
    return false;
  }

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t num_edges() const { return static_cast<uint32_t>(edges_.size()); }
  const QueryEdge& edge(uint32_t i) const { return edges_[i]; }
  const std::vector<QueryEdge>& edges() const { return edges_; }

  /// Indices of edges incident to query vertex `v` (in either direction).
  const std::vector<uint32_t>& IncidentEdges(QVertex v) const {
    return incident_[v];
  }

  /// Degree of `v` counting both directions.
  uint32_t Degree(QVertex v) const {
    return static_cast<uint32_t>(incident_[v].size());
  }

  /// Bitmask containing every edge.
  EdgeSet AllEdges() const {
    return num_edges() == 32 ? ~EdgeSet{0}
                             : ((EdgeSet{1} << num_edges()) - 1);
  }

  /// Bitmask of vertices touched by the edges in `s`.
  VertexSet VerticesOf(EdgeSet s) const;

  /// True iff the edges in `s` form a connected sub-pattern (s must be
  /// non-empty). Connectivity is over the underlying undirected graph.
  bool IsConnectedSubset(EdgeSet s) const;

  /// True iff the whole query is connected.
  bool IsConnected() const;

  /// Number of independent cycles of the sub-pattern `s`:
  /// |s| - |V(s)| + #components. Zero iff the sub-pattern is acyclic.
  int CyclomaticNumber(EdgeSet s) const;

  /// True iff the query is acyclic (as an undirected multigraph).
  bool IsAcyclic() const { return CyclomaticNumber(AllEdges()) == 0; }

  /// Extracts the sub-pattern induced by edge set `s` with vertices
  /// renumbered densely. If `vertex_map` is non-null it receives, for each
  /// new vertex id, the original vertex id.
  QueryGraph ExtractPattern(EdgeSet s,
                            std::vector<QVertex>* vertex_map = nullptr) const;

  /// A string key identifying this query up to isomorphism for patterns
  /// with <= kCanonicalVertexLimit vertices (exact canonical form via
  /// permutation search); beyond the limit the key is the identity form
  /// (sorted edge list without renaming), which is sound for caching (equal
  /// keys => isomorphic) but may miss some isomorphic pairs. The Markov
  /// table only canonicalizes patterns of <= h+1 <= 4 vertices, well within
  /// the exact range.
  ///
  /// The permutation search is paid once per QueryGraph value: the code is
  /// memoized (thread-safely, and shared by copies of the query), which is
  /// what keeps repeated cache lookups — 9 optimistic estimators keying the
  /// same query into the engine's CegCache — from re-canonicalizing.
  std::string CanonicalCode() const;

  static constexpr uint32_t kCanonicalVertexLimit = 7;

 private:
  std::string ComputeCanonicalCode() const;

  uint32_t num_vertices_ = 0;
  std::vector<QueryEdge> edges_;
  std::vector<graph::VertexLabel> vertex_constraints_;
  std::vector<std::vector<uint32_t>> incident_;
  /// Memoized CanonicalCode(); immutable once published, shared across
  /// copies (a copy has the same structure, hence the same code). Accessed
  /// via atomic_load/atomic_store so concurrent readers are safe.
  mutable std::shared_ptr<const std::string> canonical_code_;
};

}  // namespace cegraph::query

#endif  // CEGRAPH_QUERY_QUERY_GRAPH_H_
