#include "query/parser.h"

#include <cctype>
#include <map>

namespace cegraph::query {

namespace {

/// Minimal recursive-descent scanner over the pattern syntax.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  util::StatusOr<std::string> Identifier() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return util::InvalidArgumentError("expected identifier at offset " +
                                        std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  util::StatusOr<uint64_t> Number() {
    SkipSpace();
    const size_t start = pos_;
    uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) {
      return util::InvalidArgumentError("expected number at offset " +
                                        std::to_string(start));
    }
    return value;
  }

  size_t position() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::StatusOr<QueryGraph> ParseQuery(std::string_view text) {
  Scanner scanner(text);
  std::map<std::string, QVertex> var_ids;
  std::vector<QueryEdge> edges;
  std::vector<graph::VertexLabel> constraints;

  auto node = [&]() -> util::StatusOr<QVertex> {
    if (!scanner.Consume("(")) {
      return util::InvalidArgumentError("expected '(' at offset " +
                                        std::to_string(scanner.position()));
    }
    auto name = scanner.Identifier();
    if (!name.ok()) return name.status();
    graph::VertexLabel constraint = QueryGraph::kAnyVertexLabel;
    if (scanner.Consume(":")) {
      auto label = scanner.Number();
      if (!label.ok()) return label.status();
      constraint = static_cast<graph::VertexLabel>(*label);
    }
    if (!scanner.Consume(")")) {
      return util::InvalidArgumentError("expected ')' at offset " +
                                        std::to_string(scanner.position()));
    }
    auto [it, inserted] =
        var_ids.try_emplace(*name, static_cast<QVertex>(var_ids.size()));
    if (inserted) {
      constraints.push_back(constraint);
    } else if (constraint != QueryGraph::kAnyVertexLabel) {
      if (constraints[it->second] != QueryGraph::kAnyVertexLabel &&
          constraints[it->second] != constraint) {
        return util::InvalidArgumentError("conflicting constraint on '" +
                                          *name + "'");
      }
      constraints[it->second] = constraint;
    }
    return it->second;
  };

  while (!scanner.AtEnd()) {
    auto left = node();
    if (!left.ok()) return left.status();

    // Arrow: -[l]-> (forward) or <-[l]- (backward).
    bool forward;
    if (scanner.Consume("-[")) {
      forward = true;
    } else if (scanner.Consume("<-[")) {
      forward = false;
    } else {
      return util::InvalidArgumentError("expected '-[' or '<-[' at offset " +
                                        std::to_string(scanner.position()));
    }
    auto label = scanner.Number();
    if (!label.ok()) return label.status();
    const std::string_view tail = forward ? "]->" : "]-";
    if (!scanner.Consume(tail)) {
      return util::InvalidArgumentError("expected '" + std::string(tail) +
                                        "' at offset " +
                                        std::to_string(scanner.position()));
    }

    auto right = node();
    if (!right.ok()) return right.status();

    QueryEdge edge;
    edge.src = forward ? *left : *right;
    edge.dst = forward ? *right : *left;
    edge.label = static_cast<graph::Label>(*label);
    edges.push_back(edge);

    if (!scanner.Consume(";") && !scanner.Consume(",")) {
      if (!scanner.AtEnd()) {
        return util::InvalidArgumentError(
            "expected ';' between clauses at offset " +
            std::to_string(scanner.position()));
      }
    }
  }
  if (edges.empty()) {
    return util::InvalidArgumentError("empty query");
  }
  bool any_constraint = false;
  for (graph::VertexLabel c : constraints) {
    any_constraint |= (c != QueryGraph::kAnyVertexLabel);
  }
  return QueryGraph::Create(
      static_cast<uint32_t>(var_ids.size()), std::move(edges),
      any_constraint ? std::move(constraints)
                     : std::vector<graph::VertexLabel>{});
}

std::string FormatQuery(const QueryGraph& q) {
  auto node = [&](QVertex v) {
    std::string out = "(a" + std::to_string(v);
    if (q.vertex_constraint(v) != QueryGraph::kAnyVertexLabel) {
      out += ":" + std::to_string(q.vertex_constraint(v));
    }
    return out + ")";
  };
  std::string out;
  for (uint32_t i = 0; i < q.num_edges(); ++i) {
    const QueryEdge& e = q.edge(i);
    if (!out.empty()) out += "; ";
    out += node(e.src) + "-[" + std::to_string(e.label) + "]->" +
           node(e.dst);
  }
  return out;
}

}  // namespace cegraph::query
