#include "query/workload.h"

#include <set>

#include "query/subquery.h"

namespace cegraph::query {

namespace {

/// Randomizes edge directions of a template shape.
QueryGraph RandomizeDirections(const QueryGraph& shape, double flip_p,
                               util::Rng& rng) {
  std::vector<QueryEdge> edges = shape.edges();
  for (QueryEdge& e : edges) {
    if (rng.Bernoulli(flip_p)) std::swap(e.src, e.dst);
  }
  auto q = QueryGraph::Create(shape.num_vertices(), std::move(edges));
  return std::move(q).value();
}

/// Serialization key used to deduplicate instances.
std::string InstanceKey(const QueryGraph& q) {
  std::string key;
  for (const QueryEdge& e : q.edges()) {
    key += std::to_string(e.src) + ">" + std::to_string(e.dst) + ":" +
           std::to_string(e.label) + ";";
  }
  for (QVertex v = 0; v < q.num_vertices(); ++v) {
    key += std::to_string(q.vertex_constraint(v)) + ",";
  }
  return key;
}

}  // namespace

util::StatusOr<std::vector<WorkloadQuery>> GenerateWorkload(
    const graph::Graph& g, const std::vector<QueryTemplate>& templates,
    const WorkloadOptions& options) {
  matching::Matcher matcher(g);
  util::Rng rng(options.seed);
  std::vector<WorkloadQuery> out;
  std::set<std::string> seen;

  for (const QueryTemplate& tmpl : templates) {
    int produced = 0;
    int attempts = 0;
    const int attempt_budget =
        options.instances_per_template * options.max_attempts_per_instance;
    while (produced < options.instances_per_template &&
           attempts < attempt_budget) {
      ++attempts;
      QueryGraph oriented =
          RandomizeDirections(tmpl.shape, options.flip_probability, rng);
      std::vector<graph::VertexId> assignment;
      auto labels = matcher.SampleShapeEmbedding(oriented, rng, 200,
                                                 &assignment);
      if (!labels.ok()) continue;
      std::vector<QueryEdge> edges = oriented.edges();
      for (uint32_t i = 0; i < edges.size(); ++i) {
        edges[i].label = (*labels)[i];
      }
      std::vector<graph::VertexLabel> constraints;
      if (options.vertex_label_probability > 0) {
        constraints.assign(oriented.num_vertices(),
                           QueryGraph::kAnyVertexLabel);
        bool any = false;
        for (uint32_t v = 0; v < oriented.num_vertices(); ++v) {
          if (rng.Bernoulli(options.vertex_label_probability)) {
            constraints[v] = g.vertex_label(assignment[v]);
            any = true;
          }
        }
        if (!any) constraints.clear();
      }
      auto labeled = QueryGraph::Create(oriented.num_vertices(),
                                        std::move(edges),
                                        std::move(constraints));
      if (!labeled.ok()) continue;
      const std::string key = InstanceKey(*labeled);
      if (seen.contains(key)) continue;

      matching::MatchOptions match_options;
      match_options.step_budget = options.count_step_budget;
      match_options.max_count = options.max_cardinality;
      auto count = matcher.Count(*labeled, match_options);
      if (!count.ok()) continue;  // budget exceeded or too large: drop
      if (*count <= 0) continue;  // defensive; embeddings guarantee > 0
      seen.insert(key);
      out.push_back({std::move(*labeled), tmpl.name, *count});
      ++produced;
    }
  }
  if (out.empty()) {
    return util::NotFoundError("workload generation produced no queries");
  }
  return out;
}

std::vector<WorkloadQuery> FilterTrianglesOnly(
    const std::vector<WorkloadQuery>& workload) {
  std::vector<WorkloadQuery> out;
  for (const WorkloadQuery& wq : workload) {
    if (wq.query.IsAcyclic()) continue;
    if (LargestChordlessCycle(wq.query) == 3) out.push_back(wq);
  }
  return out;
}

std::vector<WorkloadQuery> FilterLargeCycles(
    const std::vector<WorkloadQuery>& workload) {
  std::vector<WorkloadQuery> out;
  for (const WorkloadQuery& wq : workload) {
    if (HasChordlessCycleLongerThan(wq.query, 3)) out.push_back(wq);
  }
  return out;
}

std::vector<WorkloadQuery> FilterAcyclic(
    const std::vector<WorkloadQuery>& workload) {
  std::vector<WorkloadQuery> out;
  for (const WorkloadQuery& wq : workload) {
    if (wq.query.IsAcyclic()) out.push_back(wq);
  }
  return out;
}

}  // namespace cegraph::query
