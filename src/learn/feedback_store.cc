#include "learn/feedback_store.h"

#include <algorithm>
#include <cmath>

#include "harness/qerror.h"
#include "util/serde.h"

namespace cegraph::learn {

namespace {

/// Payload format version (bump on layout change; older payloads are
/// discarded, never mis-parsed — corrections are derived data).
constexpr uint32_t kFeedbackFormatVersion = 1;

}  // namespace

struct FeedbackStore::Entry {
  std::string key;
  std::string display;
  std::atomic<uint64_t> hits{0};
  std::atomic<double> correction{1.0};
  std::atomic<bool> active{false};

  /// The log(truth/estimate) ring, oldest -> newest, guarded by
  /// ring_mutex (recording path only; serve-time lookups never take it).
  mutable std::mutex ring_mutex;
  std::vector<double> ratios;

  Entry(std::string k, std::string d)
      : key(std::move(k)), display(std::move(d)) {}
};

FeedbackStore::FeedbackStore(FeedbackOptions options) : options_(options) {
  if (options_.max_classes < 1) options_.max_classes = 1;
  if (options_.ring_capacity < 1) options_.ring_capacity = 1;
  if (options_.min_samples < 1) options_.min_samples = 1;
  if (!(options_.decay > 0) || options_.decay > 1.0) options_.decay = 1.0;
  if (!(options_.max_correction >= 1.0)) options_.max_correction = 1.0;
}

std::string FeedbackStore::ClassKey(std::string_view estimator,
                                    std::string_view class_code) {
  std::string key;
  key.reserve(estimator.size() + 1 + class_code.size());
  key.append(estimator);
  key.push_back('|');
  key.append(class_code);
  return key;
}

std::shared_ptr<FeedbackStore::Entry> FeedbackStore::FindOrCreate(
    std::string_view key, std::string_view display) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = classes_.find(key);
    if (it != classes_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = classes_.find(key);
  if (it != classes_.end()) return it->second;
  if (classes_.size() >= options_.max_classes) EvictOneLocked();
  auto entry =
      std::make_shared<Entry>(std::string(key), std::string(display));
  classes_.emplace(entry->key, entry);
  return entry;
}

void FeedbackStore::EvictOneLocked() {
  // Same deterministic policy as the scorecard: fewest hits first, ties
  // toward the lexicographically greatest key.
  auto victim = classes_.end();
  for (auto it = classes_.begin(); it != classes_.end(); ++it) {
    if (victim == classes_.end()) {
      victim = it;
      continue;
    }
    const uint64_t h = it->second->hits.load(std::memory_order_relaxed);
    const uint64_t vh = victim->second->hits.load(std::memory_order_relaxed);
    if (h < vh || (h == vh && it->first > victim->first)) victim = it;
  }
  if (victim == classes_.end()) return;
  classes_.erase(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

double FeedbackStore::ComputeCorrection(
    const std::vector<double>& ratios) const {
  if (ratios.empty()) return 1.0;
  // Weighted median of the ratios, weight decay^age (age 0 = newest).
  // In one dimension the geometric median *is* the median, which is what
  // makes this robust: one poisoned truth moves the correction by at
  // most one rank, never proportionally.
  std::vector<std::pair<double, double>> weighted;  // (ratio, weight)
  weighted.reserve(ratios.size());
  double total = 0;
  double weight = 1.0;
  for (size_t i = ratios.size(); i-- > 0;) {  // newest first
    weighted.emplace_back(ratios[i], weight);
    total += weight;
    weight *= options_.decay;
  }
  std::sort(weighted.begin(), weighted.end());
  double cumulative = 0;
  double median = weighted.back().first;
  for (const auto& [ratio, w] : weighted) {
    cumulative += w;
    if (cumulative >= total / 2) {
      median = ratio;
      break;
    }
  }
  const double correction = std::exp(median);
  const double cap = options_.max_correction;
  if (!(correction > 0) || !std::isfinite(correction)) return 1.0;
  return std::min(cap, std::max(1.0 / cap, correction));
}

std::optional<FeedbackUpdate> FeedbackStore::Record(std::string_view key,
                                                    std::string_view display,
                                                    double estimate,
                                                    double truth) {
  if (!harness::UsableQError(estimate, truth)) return std::nullopt;
  const double ratio = std::log(truth / estimate);
  if (!std::isfinite(ratio)) return std::nullopt;

  const std::shared_ptr<Entry> entry = FindOrCreate(key, display);
  entry->hits.fetch_add(1, std::memory_order_relaxed);

  double correction;
  uint64_t samples;
  bool activated = false;
  bool moved = false;
  {
    std::lock_guard<std::mutex> lock(entry->ring_mutex);
    // Kept oldest -> newest so the decay weights and serialization read
    // straight through; the O(capacity) shift is bounded at 64 doubles
    // and only runs on the off-hot-path recording thread.
    if (entry->ratios.size() >= options_.ring_capacity) {
      entry->ratios.erase(entry->ratios.begin());
    }
    entry->ratios.push_back(ratio);
    samples = entry->ratios.size();
    correction = ComputeCorrection(entry->ratios);
    const double previous =
        entry->correction.load(std::memory_order_relaxed);
    const bool was_active = entry->active.load(std::memory_order_relaxed);
    const bool now_active = samples >= options_.min_samples;
    entry->correction.store(correction, std::memory_order_relaxed);
    entry->active.store(now_active, std::memory_order_relaxed);
    activated = now_active && !was_active;
    if (now_active && was_active && previous > 0) {
      const double shift = correction > previous ? correction / previous
                                                 : previous / correction;
      moved = shift > 1.25;
    }
  }
  if (!activated && !moved) return std::nullopt;
  FeedbackUpdate update;
  update.key = entry->key;
  update.display = entry->display;
  update.correction = correction;
  update.samples = samples;
  update.activated = activated;
  return update;
}

double FeedbackStore::CorrectionFor(std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = classes_.find(key);
  if (it == classes_.end()) return 1.0;
  if (!it->second->active.load(std::memory_order_relaxed)) return 1.0;
  return it->second->correction.load(std::memory_order_relaxed);
}

std::string FeedbackStore::Serialize() const {
  // Copy the entry pointers out under the shared lock, then walk each
  // ring under its own mutex — the exact locking the recording path
  // uses, so serialization can run against live traffic.
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    entries.reserve(classes_.size());
    for (const auto& [key, entry] : classes_) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const std::shared_ptr<Entry>& a,
               const std::shared_ptr<Entry>& b) { return a->key < b->key; });

  util::serde::Writer writer;
  writer.WriteU32(kFeedbackFormatVersion);
  writer.WriteU64(stamp());
  writer.WriteU64(entries.size());
  for (const auto& entry : entries) {
    writer.WriteString(entry->key);
    writer.WriteString(entry->display);
    writer.WriteU64(entry->hits.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(entry->ring_mutex);
    writer.WriteU64(entry->ratios.size());
    for (const double ratio : entry->ratios) writer.WriteDouble(ratio);
  }
  return writer.TakeBuffer();
}

util::Status FeedbackStore::Deserialize(std::string_view bytes,
                                        uint64_t expected_stamp,
                                        bool* discarded) {
  if (discarded != nullptr) *discarded = false;
  util::serde::Reader reader(bytes);
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kFeedbackFormatVersion) {
    // Unknown layout: corrections are derived data, so skipping the
    // payload (and re-learning) beats failing the whole snapshot load.
    if (discarded != nullptr) *discarded = true;
    return util::Status();
  }
  auto payload_stamp = reader.ReadU64();
  if (!payload_stamp.ok()) return payload_stamp.status();
  if (*payload_stamp != expected_stamp) {
    // The drift guard: these corrections were learned against a
    // different graph; applying them would be systematically wrong.
    if (discarded != nullptr) *discarded = true;
    return util::Status();
  }
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto key = reader.ReadString();
    if (!key.ok()) return key.status();
    auto display = reader.ReadString();
    if (!display.ok()) return display.status();
    auto hits = reader.ReadU64();
    if (!hits.ok()) return hits.status();
    auto samples = reader.ReadU64();
    if (!samples.ok()) return samples.status();
    std::vector<double> ratios;
    ratios.reserve(std::min<uint64_t>(*samples, options_.ring_capacity));
    for (uint64_t s = 0; s < *samples; ++s) {
      auto ratio = reader.ReadDouble();
      if (!ratio.ok()) return ratio.status();
      ratios.push_back(*ratio);
    }
    // A payload written under a larger ring keeps its newest suffix.
    if (ratios.size() > options_.ring_capacity) {
      ratios.erase(ratios.begin(),
                   ratios.end() - static_cast<ptrdiff_t>(
                                      options_.ring_capacity));
    }

    // Existing entries win: live learning is newer than the snapshot.
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      if (classes_.find(*key) != classes_.end()) continue;
    }
    const std::shared_ptr<Entry> entry = FindOrCreate(*key, *display);
    std::lock_guard<std::mutex> lock(entry->ring_mutex);
    if (!entry->ratios.empty()) continue;  // raced a live recording
    entry->ratios = std::move(ratios);
    entry->hits.store(*hits, std::memory_order_relaxed);
    entry->correction.store(ComputeCorrection(entry->ratios),
                            std::memory_order_relaxed);
    entry->active.store(entry->ratios.size() >= options_.min_samples,
                        std::memory_order_relaxed);
  }
  SetStamp(expected_stamp);
  return util::Status();
}

std::vector<FeedbackClassReport> FeedbackStore::Report() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    entries.reserve(classes_.size());
    for (const auto& [key, entry] : classes_) entries.push_back(entry);
  }
  std::vector<FeedbackClassReport> reports;
  reports.reserve(entries.size());
  for (const auto& entry : entries) {
    FeedbackClassReport report;
    report.key = entry->key;
    report.display = entry->display;
    report.hits = entry->hits.load(std::memory_order_relaxed);
    report.correction = entry->correction.load(std::memory_order_relaxed);
    report.active = entry->active.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(entry->ring_mutex);
      report.samples = entry->ratios.size();
    }
    reports.push_back(std::move(report));
  }
  std::sort(reports.begin(), reports.end(),
            [](const FeedbackClassReport& a, const FeedbackClassReport& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              return a.key < b.key;
            });
  return reports;
}

size_t FeedbackStore::class_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return classes_.size();
}

size_t FeedbackStore::active_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  size_t active = 0;
  for (const auto& [key, entry] : classes_) {
    if (entry->active.load(std::memory_order_relaxed)) ++active;
  }
  return active;
}

void FeedbackStore::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  classes_.clear();
}

uint64_t FeedbackStore::CountSerializedClasses(std::string_view bytes) {
  util::serde::Reader reader(bytes);
  auto version = reader.ReadU32();
  if (!version.ok() || *version != kFeedbackFormatVersion) return 0;
  if (!reader.ReadU64().ok()) return 0;  // stamp
  auto count = reader.ReadU64();
  return count.ok() ? *count : 0;
}

uint64_t StampFingerprint(uint32_t num_vertices, uint32_t num_labels,
                          uint32_t num_vertex_labels, uint64_t num_edges,
                          uint64_t edge_hash) {
  // FNV-1a over the five fields, so any graph change (and only a graph
  // change) rotates the stamp.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(num_vertices);
  mix(num_labels);
  mix(num_vertex_labels);
  mix(num_edges);
  mix(edge_hash);
  return h;
}

}  // namespace cegraph::learn
