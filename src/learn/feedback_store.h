#ifndef CEGRAPH_LEARN_FEEDBACK_STORE_H_
#define CEGRAPH_LEARN_FEEDBACK_STORE_H_

// The learned-feedback layer: closing the estimate -> truth loop the way
// postgres AQO does, but over the CEG stack's query classes. Every
// truth-carrying request yields (estimate, truth) pairs per estimator;
// the FeedbackStore accumulates them per *query class* — estimator name
// + isomorphism-canonical shape (QueryGraph::CanonicalCode) + sorted
// label multiset, the same classing key the obs::Scorecard uses — and
// learns a per-class multiplicative correction factor.
//
// The correction is the exponential of the decay-weighted median of the
// observed log(truth / estimate) ratios (the 1-D geometric median, so
// single outliers cannot drag it), retained in a small per-class ring.
// A class only *applies* its correction once it has accumulated
// `min_samples` ratios (the confidence gate); below that the store
// answers 1.0 and the estimate serves raw. Exponential decay weights
// newer observations higher, so a shifting workload re-learns instead
// of averaging across regimes.
//
// The table is bounded like the scorecard: inserting past `max_classes`
// deterministically evicts the class with the fewest hits (ties break
// toward the greatest key). Lookup (the serve-time path) is a
// shared-lock hash find plus one relaxed atomic load; recording takes
// only the class's own mutex and runs off the request hot path.
//
// Persistence: Serialize() emits a deterministic, key-sorted payload of
// the raw log-ratio rings (not the derived corrections), stamped with a
// 64-bit mix of the base-graph fingerprint. Deserialize() recomputes
// every correction from the stored ratios — doubles travel as IEEE-754
// bit patterns, so a save/load round trip reproduces bit-identical
// corrections — and *discards* the payload wholesale when its stamp no
// longer matches the loading context's graph (the drift guard: learned
// corrections are only meaningful against the graph that produced the
// truths).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cegraph::learn {

struct FeedbackOptions {
  /// Bounded class table; inserting past the bound deterministically
  /// evicts the class with the fewest hits (ties: greatest key).
  size_t max_classes = 256;
  /// Log-ratio observations retained per class (newest wins once full).
  size_t ring_capacity = 64;
  /// Confidence gate: ratios a class needs before its correction is
  /// applied at serve time. Below the gate CorrectionFor answers 1.0.
  uint64_t min_samples = 8;
  /// Exponential decay per observation of age: the weight of the k-th
  /// newest ratio is decay^k in the weighted median. 1.0 = no decay.
  double decay = 0.9;
  /// Corrections are clamped into [1/max_correction, max_correction] —
  /// a safety rail against a poisoned truth stream.
  double max_correction = 1e6;
};

/// One class's learned state, for the wire table / client / tests.
struct FeedbackClassReport {
  std::string key;      ///< estimator|canonical-code|label-multiset
  std::string display;  ///< template name or first-seen pattern
  uint64_t hits = 0;    ///< recorded observations (lifetime)
  uint64_t samples = 0; ///< ratios currently in the ring
  double correction = 1.0;
  bool active = false;  ///< past the confidence gate
};

/// What one Record() changed, for the journal `correction_update`
/// event. Only returned when the update is *reportable*: the class just
/// crossed the confidence gate, or an active correction moved by more
/// than 25% — so a stable class cannot spam the journal per sample.
struct FeedbackUpdate {
  std::string key;
  std::string display;
  double correction = 1.0;
  uint64_t samples = 0;
  bool activated = false;  ///< this update crossed the gate
};

class FeedbackStore {
 public:
  explicit FeedbackStore(FeedbackOptions options = {});
  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  /// The store's class key: estimator name + '|' + query-class code
  /// (CanonicalCode + '|' + sorted label multiset, as built by the
  /// service). Corrections are per estimator — each one is biased its
  /// own way on the same class.
  static std::string ClassKey(std::string_view estimator,
                              std::string_view class_code);

  /// Folds one usable (truth > 0, finite positive estimate) observation
  /// into the class: pushes log(truth / estimate) into the ring and
  /// recomputes the decay-weighted median correction. The caller must
  /// pre-filter with harness::UsableQError — a non-usable pair is
  /// silently dropped here as the last line of defense. Returns a
  /// FeedbackUpdate only when the change is journal-worthy (gate
  /// crossing, or an active correction moving > 25%).
  std::optional<FeedbackUpdate> Record(std::string_view key,
                                       std::string_view display,
                                       double estimate, double truth);

  /// The multiplicative correction to apply to `key`'s raw estimate:
  /// the learned factor when the class exists and has passed the
  /// confidence gate, 1.0 otherwise. Shared-lock find + relaxed load.
  double CorrectionFor(std::string_view key) const;

  /// The base-graph stamp the stored corrections were learned against
  /// (a StampFingerprint mix). 0 = never stamped.
  uint64_t stamp() const { return stamp_.load(std::memory_order_relaxed); }
  void SetStamp(uint64_t stamp) {
    stamp_.store(stamp, std::memory_order_relaxed);
  }

  /// Deterministic, key-sorted binary payload of the full store (stamp,
  /// per-class rings). Two stores holding the same observations
  /// serialize byte-identically.
  std::string Serialize() const;

  /// Restores a Serialize() payload. The drift guard: when the payload's
  /// stamp differs from `expected_stamp`, nothing is imported and
  /// `*discarded` (if non-null) is set — a stale-graph payload is a
  /// clean no-op, not an error. Classes already present win over the
  /// payload's (snapshot semantics: live learning beats stored state).
  util::Status Deserialize(std::string_view bytes, uint64_t expected_stamp,
                           bool* discarded = nullptr);

  /// Every class, sorted by hits descending (ties: key ascending) — the
  /// deterministic order for the wire, the client table and the tests.
  std::vector<FeedbackClassReport> Report() const;

  size_t class_count() const;
  size_t active_count() const;
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Drops every class (the stamp survives). Used by tests and the
  /// drift guard's discard path.
  void Clear();

  /// Parses a Serialize() payload far enough to count its classes —
  /// the `cegraph_stats inspect` entry count — without building a
  /// store. Returns 0 on a malformed payload.
  static uint64_t CountSerializedClasses(std::string_view bytes);

  const FeedbackOptions& options() const { return options_; }

 private:
  struct Entry;

  std::shared_ptr<Entry> FindOrCreate(std::string_view key,
                                      std::string_view display);
  void EvictOneLocked();

  /// exp(decay-weighted median of `ratios`), clamped. `ratios` is
  /// ordered oldest -> newest.
  double ComputeCorrection(const std::vector<double>& ratios) const;

  FeedbackOptions options_;

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mutex_;  // guards the map structure only
  std::unordered_map<std::string, std::shared_ptr<Entry>, StringHash,
                     std::equal_to<>>
      classes_;

  std::atomic<uint64_t> stamp_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// The 64-bit graph stamp corrections are tied to: an FNV-style mix of
/// the base fingerprint's fields. Declared here (not on graph::Graph)
/// because only the feedback layer needs a single-word digest.
uint64_t StampFingerprint(uint32_t num_vertices, uint32_t num_labels,
                          uint32_t num_vertex_labels, uint64_t num_edges,
                          uint64_t edge_hash);

}  // namespace cegraph::learn

#endif  // CEGRAPH_LEARN_FEEDBACK_STORE_H_
